"""Bounded retries with seeded exponential backoff.

Transient failures — a worker OOM-killed mid-point, a flaky filesystem
under the result cache, an injected chaos fault — should cost a retry,
not a campaign.  This module is the *policy* half of the executor's
fault-tolerance story: how many times to retry, and how long to wait
between attempts.

Determinism is the design constraint.  Backoff jitter normally uses
wall-clock entropy; here every delay is drawn from a
:class:`numpy.random.Generator` derived from ``(seed, index, attempt)``
via :func:`backoff_rng`, so a re-run of the same sweep (or a chaos test
in CI) sleeps the exact same schedule.  The *results* of retried points
are bit-identical to never-failed points by construction — the executor
re-runs the point with the same child :class:`~numpy.random.SeedSequence`.
"""

from __future__ import annotations

import logging
import time
import traceback
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

import numpy as np

logger = logging.getLogger(__name__)

__all__ = [
    "RetryPolicy",
    "RetryExhaustedError",
    "RetryOutcome",
    "backoff_rng",
    "call_with_retry",
]

#: Domain-separation tag mixed into every backoff seed, so backoff
#: draws can never collide with the metric's own random stream.
_BACKOFF_TAG = 0xB0FF


def backoff_rng(seed: int, index: int, attempt: int) -> np.random.Generator:
    """Deterministic generator for one backoff draw.

    Depends only on ``(seed, index, attempt)`` — re-running a sweep
    replays the identical delay schedule, and no two points (or two
    attempts of one point) share a stream.
    """
    entropy = [_BACKOFF_TAG, abs(int(seed)), abs(int(index)), abs(int(attempt))]
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing sweep point is retried.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first (``0`` = fail fast).
    backoff_base_s:
        Delay before the first retry, in seconds (must be positive —
        use a tiny value like ``1e-6`` for "no real sleep" in tests).
    backoff_factor:
        Multiplier applied per additional retry (``>= 1``).
    backoff_max_s:
        Upper clamp on any single delay.
    jitter:
        Fraction of the delay randomised away (``0`` = fully
        deterministic delay value, ``0.5`` = delay drawn uniformly from
        ``[0.5 d, d]``).  The draw itself is seeded, so even jittered
        schedules replay exactly.
    """

    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not self.backoff_base_s > 0:
            raise ValueError(
                f"backoff_base_s must be > 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < 0:
            raise ValueError(
                f"backoff_max_s must be >= 0, got {self.backoff_max_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (0-based).

        ``base * factor**attempt`` clamped to ``backoff_max_s``, with a
        seeded multiplicative jitter drawn from ``rng`` when given.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        delay = min(
            self.backoff_base_s * self.backoff_factor**attempt, self.backoff_max_s
        )
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 - self.jitter * float(rng.random())
        return delay

    def schedule(self, seed: int, index: int) -> list[float]:
        """The full (deterministic) delay schedule for one point."""
        return [
            self.delay_s(attempt, backoff_rng(seed, index, attempt))
            for attempt in range(self.max_retries)
        ]


class RetryExhaustedError(RuntimeError):
    """Raised by :func:`call_with_retry` when every attempt failed.

    ``errors`` holds one formatted traceback per failed attempt; the
    last underlying exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, errors: list[str]):
        super().__init__(message)
        self.errors = errors


@dataclass(frozen=True)
class RetryOutcome:
    """What :func:`call_with_retry` returns on success."""

    value: Any
    attempts: int  # total attempts made (>= 1)
    errors: tuple[str, ...]  # tracebacks of the failed attempts

    @property
    def retried(self) -> int:
        """How many retries it took (0 = first try succeeded)."""
        return self.attempts - 1


def call_with_retry(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    *,
    seed: int = 0,
    index: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
) -> RetryOutcome:
    """Call ``fn(attempt)`` under ``policy``, sleeping seeded backoff.

    ``fn`` receives the 0-based attempt number (fault-injection hooks
    key off it).  Exceptions in ``retry_on`` are retried up to
    ``policy.max_retries`` times; anything else — notably
    ``KeyboardInterrupt`` — propagates immediately.  When the budget is
    exhausted, :class:`RetryExhaustedError` carries every attempt's
    traceback.
    """
    errors: list[str] = []
    for attempt in range(policy.max_retries + 1):
        try:
            value = fn(attempt)
        except retry_on as exc:
            errors.append(traceback.format_exc())
            if attempt >= policy.max_retries:
                logger.warning(
                    "point %d: giving up after %d attempt(s): %r",
                    index, attempt + 1, exc,
                )
                raise RetryExhaustedError(
                    f"gave up after {attempt + 1} attempt"
                    f"{'s' if attempt else ''}: {exc!r}",
                    errors,
                ) from exc
            delay = policy.delay_s(attempt, backoff_rng(seed, index, attempt))
            logger.warning(
                "point %d: attempt %d failed (%r); retrying in %.3fs",
                index, attempt + 1, exc, delay,
            )
            sleep(delay)
        else:
            return RetryOutcome(value=value, attempts=attempt + 1, errors=tuple(errors))
    raise AssertionError("unreachable")  # pragma: no cover
