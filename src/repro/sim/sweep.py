"""Parameter sweeps.

A sweep applies a metric function across a list of parameter values and
collects ``(value, metric)`` points — the backbone of every "X versus
distance/angle/rate" figure in the experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

__all__ = ["SweepPoint", "sweep_1d"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D sweep."""

    value: float
    metric: object


def sweep_1d(
    values: Iterable[float],
    metric_fn: Callable[[float], object],
    on_point: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Evaluate ``metric_fn`` at each value.

    ``on_point`` (if given) is called after each evaluation — benches
    use it to stream progress lines.
    """
    points: list[SweepPoint] = []
    for value in values:
        point = SweepPoint(value=float(value), metric=metric_fn(float(value)))
        points.append(point)
        if on_point is not None:
            on_point(point)
    return points


def metrics(points: Sequence[SweepPoint]) -> list[object]:
    """The metric column of a sweep."""
    return [p.metric for p in points]


def values(points: Sequence[SweepPoint]) -> list[float]:
    """The value column of a sweep."""
    return [p.value for p in points]
