"""Parameter sweeps.

A sweep applies a metric function across a list of parameter values and
collects ``(value, metric)`` points — the backbone of every "X versus
distance/angle/rate" figure in the experiment suite.

:func:`sweep_1d` keeps its original in-order serial loop as the
**reference implementation**; pass ``executor=`` (a
:class:`repro.sim.executor.SweepExecutor`) to route the same sweep
through the parallel/cached engine — the determinism suite pins both
paths to identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (executor imports us)
    from repro.sim.executor import SweepExecutor

__all__ = ["SweepPoint", "sweep_1d"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D sweep."""

    value: float
    metric: object


def sweep_1d(
    values: Iterable[float],
    metric_fn: Callable[[float], object],
    on_point: Callable[[SweepPoint], None] | None = None,
    executor: "SweepExecutor | None" = None,
) -> list[SweepPoint]:
    """Evaluate ``metric_fn`` at each value.

    ``on_point`` (if given) is called after each evaluation — benches
    use it to stream progress lines.

    With ``executor=None`` this is the serial reference loop.  With an
    executor, the metric function is wrapped in a
    :class:`~repro.sim.executor.FunctionTask` and dispatched through
    the engine (``process`` backends need a picklable ``metric_fn``);
    results are identical either way.
    """
    if executor is not None:
        from repro.sim.executor import FunctionTask

        report = executor.run(values, FunctionTask(metric_fn), on_point=on_point)
        return report.points
    points: list[SweepPoint] = []
    for value in values:
        point = SweepPoint(value=float(value), metric=metric_fn(float(value)))
        points.append(point)
        if on_point is not None:
            on_point(point)
    return points


def metrics(points: Sequence[SweepPoint]) -> list[object]:
    """The metric column of a sweep."""
    return [p.metric for p in points]


def values(points: Sequence[SweepPoint]) -> list[float]:
    """The value column of a sweep."""
    return [p.value for p in points]
