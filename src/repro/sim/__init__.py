"""Simulation harness: Monte-Carlo BER engine, sweeps, tables, plots.

Everything the benchmarks and examples use to turn the core library
into the paper's tables and figures.
"""

from repro.sim.monte_carlo import BerEstimate, estimate_link_ber, awgn_symbol_ber
from repro.sim.sweep import sweep_1d, SweepPoint
from repro.sim.results import ResultTable
from repro.sim.plotting import ascii_plot, format_db

__all__ = [
    "BerEstimate",
    "estimate_link_ber",
    "awgn_symbol_ber",
    "sweep_1d",
    "SweepPoint",
    "ResultTable",
    "ascii_plot",
    "format_db",
]
