"""Simulation harness: Monte-Carlo BER engine, sweeps, tables, plots.

Everything the benchmarks and examples use to turn the core library
into the paper's tables and figures — plus the parallel, cached sweep
execution engine (:mod:`repro.sim.executor` / :mod:`repro.sim.cache`)
that drives production-scale campaigns without perturbing a single
number, its fault-tolerance layer (:mod:`repro.sim.retry` seeded
backoff, :mod:`repro.sim.checkpoint` JSONL resume, and the
:mod:`repro.sim.faults` chaos harness that proves every recovery
path), the batched frame-chain kernel (:mod:`repro.sim.batch`) that
makes each point cheap, and the hot-path microbenchmarks
(:mod:`repro.sim.profiling`) that keep it that way.
"""

from repro.sim.monte_carlo import BerEstimate, estimate_link_ber, awgn_symbol_ber
from repro.sim.batch import BatchLinkSimulator, simulate_link_batch
from repro.sim.sweep import sweep_1d, SweepPoint
from repro.sim.results import ResultTable
from repro.sim.plotting import ascii_plot, format_db
from repro.sim.cache import (
    CacheStats,
    CacheVerifyReport,
    ResultCache,
    code_version,
    stable_hash,
)
from repro.sim.checkpoint import CheckpointError, SweepCheckpoint
from repro.sim.retry import (
    RetryExhaustedError,
    RetryPolicy,
    backoff_rng,
    call_with_retry,
)
from repro.sim.faults import (
    BlockageFrameOracle,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    blockage_burst_plan,
    corrupt_file,
)
from repro.sim.executor import (
    BerSweepTask,
    FunctionTask,
    PointRecord,
    PointTimeoutError,
    SweepExecutor,
    SweepReport,
    SweepTask,
    run_sweep,
)

__all__ = [
    "BerEstimate",
    "estimate_link_ber",
    "awgn_symbol_ber",
    "BatchLinkSimulator",
    "simulate_link_batch",
    "sweep_1d",
    "SweepPoint",
    "ResultTable",
    "ascii_plot",
    "format_db",
    "CacheStats",
    "CacheVerifyReport",
    "ResultCache",
    "code_version",
    "stable_hash",
    "CheckpointError",
    "SweepCheckpoint",
    "RetryExhaustedError",
    "RetryPolicy",
    "backoff_rng",
    "call_with_retry",
    "BlockageFrameOracle",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "blockage_burst_plan",
    "corrupt_file",
    "BerSweepTask",
    "FunctionTask",
    "PointRecord",
    "PointTimeoutError",
    "SweepExecutor",
    "SweepReport",
    "SweepTask",
    "run_sweep",
]
