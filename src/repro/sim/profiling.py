"""Hot-path microbenchmarks: reference loops vs vectorized kernels.

PR 2 vectorized three interpreter-bound hot paths — the Viterbi
decoder, the frame chain (TX synthesis + the batched link kernel) and
the Van Atta pattern sweep — while keeping the original loops as
bit-exact references.  This module times each pair on identical inputs
and reports the speedup, serving three callers:

* ``repro bench`` (the CLI table for humans),
* ``tools/profile_hotpaths.py`` (writes the ``BENCH_hotpaths.json``
  perf-trajectory file that CI uploads, so future perf PRs have a
  baseline to compare against),
* ``tests/test_hotpath_bench.py`` (loosely asserts the headline
  speedups so a regression to the Python loops cannot land silently).

Timing method: one untimed warm-up call (builds the cached trellis /
modulation tables and warms the allocator), then best-of-``repeats``
wall-clock via :func:`time.perf_counter`.  Workloads are sized so the
reference side runs long enough to dominate timer noise; ``--quick``
shrinks them to CI scale (ratios get noisier but stay meaningful).

The end-to-end link benchmark times :meth:`BatchLinkSimulator.simulate`
with the simulator prebuilt — matching how ``estimate_link_ber``'s
vectorized backend amortises construction across chunks.  Its speedup
is intentionally smaller than the per-kernel numbers: the batch shares
the reference's bit-exact per-frame costs (RNG draw order, preamble
correlation, decode tail), which Amdahl-bounds the whole chain.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.convolutional import K7_CODE
from repro.core.link import LinkConfig, simulate_link
from repro.core.tag import Tag
from repro.em.vanatta import VanAttaArray
from repro.sim.batch import BatchLinkSimulator

__all__ = [
    "KernelBench",
    "BenchReport",
    "run_hotpath_benchmarks",
    "write_trajectory",
    "TRAJECTORY_SCHEMA_VERSION",
]

#: Bump when the JSON layout of ``BENCH_hotpaths.json`` changes.
TRAJECTORY_SCHEMA_VERSION = 1


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock of ``repeats`` timed calls (after one warm-up)."""
    fn()  # warm-up: populate lru_caches, fault pages, settle the allocator
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class KernelBench:
    """One reference-vs-vectorized timing pair."""

    name: str
    description: str
    reference_s: float
    vectorized_s: float
    repeats: int
    params: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference time over vectorized time (>1 means faster)."""
        if self.vectorized_s <= 0.0:
            return float("inf")
        return self.reference_s / self.vectorized_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "reference_s": self.reference_s,
            "vectorized_s": self.vectorized_s,
            "speedup": round(self.speedup, 2),
            "repeats": self.repeats,
            "params": self.params,
        }


@dataclass(frozen=True)
class BenchReport:
    """A full microbenchmark run plus the environment it ran in."""

    benchmarks: tuple[KernelBench, ...]
    quick: bool
    generated: str

    def by_name(self) -> dict[str, KernelBench]:
        return {bench.name: bench for bench in self.benchmarks}

    def to_dict(self) -> dict:
        return {
            "schema": TRAJECTORY_SCHEMA_VERSION,
            "generated": self.generated,
            "quick": self.quick,
            "environment": {
                "python": sys.version.split()[0],
                "numpy": np.__version__,
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
            },
            "benchmarks": [bench.to_dict() for bench in self.benchmarks],
        }


# -- individual kernels -------------------------------------------------------


def _bench_viterbi(quick: bool) -> KernelBench:
    """K=7 rate-1/2 Viterbi: nested state loop vs array-wide update."""
    num_bits = 300 if quick else 1500
    repeats = 2 if quick else 3
    rng = np.random.default_rng(7)
    message = rng.integers(0, 2, size=num_bits).astype(np.int8)
    coded = K7_CODE.encode(message)
    # flip a few bits so the decoder does real error-correction work
    flips = rng.choice(coded.size, size=max(1, coded.size // 200), replace=False)
    coded[flips] ^= 1

    reference_s = _best_of(
        lambda: K7_CODE.decode_hard(coded, backend="reference"), repeats
    )
    vectorized_s = _best_of(
        lambda: K7_CODE.decode_hard(coded, backend="vectorized"), repeats
    )
    return KernelBench(
        name="viterbi_decode",
        description="K=7 rate-1/2 hard-decision Viterbi decode",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"message_bits": num_bits, "constraint_length": 7},
    )


def _bench_frame_tx(quick: bool) -> KernelBench:
    """Frame-chain TX synthesis: Tag loops vs CRC-table + LUT batch."""
    num_frames = 4 if quick else 12
    num_bits = 2048
    repeats = 2 if quick else 3
    config = LinkConfig()
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)
    tag = Tag(config.tag)
    theta = config.incidence_angle_rad
    rng = np.random.default_rng(11)
    payload = rng.integers(0, 2, size=(num_frames, num_bits)).astype(np.int8)

    def reference() -> None:
        for f in range(num_frames):
            frame = tag.make_frame(payload[f])
            tag.reflection_sequence(frame, theta)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(lambda: simulator.tx_reflections(payload), repeats)
    return KernelBench(
        name="frame_chain_tx",
        description="frame TX synthesis: bits -> CRC -> symbols -> reflections",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits, "modulation": "QPSK"},
    )


def _bench_link_end_to_end(quick: bool) -> KernelBench:
    """Whole link chain: per-frame simulate_link vs the batched kernel.

    The simulator is prebuilt (as the vectorized BER backend does);
    the speedup is Amdahl-bounded by the bit-exact per-frame stages the
    batch shares with the reference (RNG order, sync correlation,
    decode tail) — report it honestly rather than cherry-picking.
    """
    num_frames = 4 if quick else 10
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig()
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def vectorized() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate(num_frames, rng)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(vectorized, repeats)
    return KernelBench(
        name="link_end_to_end",
        description="full frame chain (modulate->channel->noise->demod), batched",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits},
    )


def _bench_vanatta(quick: bool) -> KernelBench:
    """Van Atta monostatic pattern: per-angle loop vs broadcast grid."""
    num_angles = 361 if quick else 1441
    repeats = 2 if quick else 3
    array = VanAttaArray(num_pairs=8)
    grid = np.linspace(-np.pi / 2, np.pi / 2, num_angles)

    def reference() -> None:
        for theta in grid:
            array.monostatic_gain(float(theta))

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(lambda: array.monostatic_gain_pattern(grid), repeats)
    return KernelBench(
        name="vanatta_pattern",
        description="Van Atta monostatic gain across an incidence-angle grid",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"angles": num_angles, "num_pairs": 8},
    )


_BENCHES = (_bench_viterbi, _bench_frame_tx, _bench_link_end_to_end, _bench_vanatta)


def run_hotpath_benchmarks(quick: bool = False) -> BenchReport:
    """Time every hot-path kernel pair; returns the full report."""
    generated = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    benches = tuple(bench(quick) for bench in _BENCHES)
    return BenchReport(benchmarks=benches, quick=quick, generated=generated)


def write_trajectory(report: BenchReport, path: str | os.PathLike) -> Path:
    """Write ``report`` as the ``BENCH_hotpaths.json`` trajectory file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
    return target
