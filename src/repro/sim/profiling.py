"""Hot-path microbenchmarks: reference loops vs vectorized kernels.

PR 2 vectorized three interpreter-bound hot paths — the Viterbi
decoder, the frame chain (TX synthesis + the batched link kernel) and
the Van Atta pattern sweep — while keeping the original loops as
bit-exact references.  This module times each pair on identical inputs
and reports the speedup, serving three callers:

* ``repro bench`` (the CLI table for humans),
* ``tools/profile_hotpaths.py`` (writes the ``BENCH_hotpaths.json``
  perf-trajectory file that CI uploads, so future perf PRs have a
  baseline to compare against),
* ``tests/test_hotpath_bench.py`` (loosely asserts the headline
  speedups so a regression to the Python loops cannot land silently).

Timing method: one untimed warm-up call (builds the cached trellis /
modulation tables and warms the allocator), then best-of-``repeats``
wall-clock via :func:`time.perf_counter`.  Workloads are sized so the
reference side runs long enough to dominate timer noise; ``--quick``
shrinks them to CI scale (ratios get noisier but stay meaningful).

The end-to-end link benchmark times :meth:`BatchLinkSimulator.simulate`
with the simulator prebuilt — matching how ``estimate_link_ber``'s
vectorized backend amortises construction across chunks.  Its speedup
is intentionally smaller than the per-kernel numbers: the batch shares
the reference's bit-exact per-frame costs (RNG draw order, preamble
correlation, decode tail), which Amdahl-bounds the whole chain.

PR 4 adds the stochastic-channel and scheduling entries:

* ``multipath_apply`` — :meth:`MultipathChannel.apply` with the cached
  tap grid and shared-FFT delay operator versus the original
  per-``Signal`` reference (kept as ``_apply_reference``);
* ``link_rician_end_to_end`` — the fading frame chain, which used to
  fall back to the serial loop and now batches.  Read its ratio with
  the bit-exactness constraint in mind: the FFT delay operator and the
  fractional-delay phase ramps are *shared* irreducible per-frame cost
  on both sides (no linearity shortcuts allowed — they change the
  floating-point sums), and the same PR's ``multipath_apply`` fix sped
  the reference side up too, so the honest ratio here is far below the
  interpreter-bound kernels above;
* ``sweep_adaptive_vs_uniform`` — a 12-point E3-style Rician waterfall
  through the sweep engine: the pre-PR posture (uniform schedule,
  serial link backend) versus this PR's (adaptive chunk rounds +
  vectorized fading kernels), bit-identical results either way.  On a
  single-CPU runner the adaptive schedule cannot shrink wall-clock on
  its own (it reallocates *worker slots*, and there is only one); the
  measured win is the vectorized backend plus simulator memoisation,
  and grows with worker count.

PR 9 adds the whole-budget and compiled-tier entries:

* ``link_end_to_end_fused`` / ``link_rician_end_to_end_fused`` — the
  serial per-frame loop versus one fused ``simulate_point`` call that
  takes the whole frame budget.  Still bit-exact, so still
  Amdahl-bounded: the per-frame RNG draw order, the 1-D sync
  correlation and the IIR/FIR filter passes are part of the bit-exact
  contract and cannot be reassociated — the fused ratio measures the
  per-chunk Python re-entry this PR removes, not a new asymptotic
  regime;
* ``link_fast_tier`` — the serial loop versus the statistical fast
  tier (:class:`repro.sim.fastlink.FastLinkSimulator`): single
  precision, bulk RNG, batched FFT sync, quantised Rician taps, with
  numba kernels when available and logged pure-numpy fallbacks when
  not.  This is where the order-of-magnitude ratio lives; acceptance
  is the Wilson-CI statistical-equivalence suite, not byte equality.
  The ``environment`` block of the trajectory JSON records whether
  numba was active (version or ``"absent"``) so ratios from different
  machines are comparable.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.channel.multipath import rician_channel
from repro.core.convolutional import K7_CODE
from repro.core.link import LinkConfig, simulate_link
from repro.core.tag import Tag
from repro.dsp.signal import Signal
from repro.em.vanatta import VanAttaArray
from repro.sim.batch import BatchLinkSimulator
from repro.sim.jit import numba_status

__all__ = [
    "KernelBench",
    "BenchReport",
    "run_hotpath_benchmarks",
    "write_trajectory",
    "load_trajectory_speedups",
    "check_regression",
    "compare_trajectories",
    "TRAJECTORY_SCHEMA_VERSION",
    "REGRESSION_FLOOR",
]

#: Bump when the JSON layout of ``BENCH_hotpaths.json`` changes.
TRAJECTORY_SCHEMA_VERSION = 1


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock of ``repeats`` timed calls (after one warm-up)."""
    fn()  # warm-up: populate lru_caches, fault pages, settle the allocator
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class KernelBench:
    """One reference-vs-vectorized timing pair."""

    name: str
    description: str
    reference_s: float
    vectorized_s: float
    repeats: int
    params: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference time over vectorized time (>1 means faster)."""
        if self.vectorized_s <= 0.0:
            return float("inf")
        return self.reference_s / self.vectorized_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "reference_s": self.reference_s,
            "vectorized_s": self.vectorized_s,
            "speedup": round(self.speedup, 2),
            "repeats": self.repeats,
            "params": self.params,
        }


@dataclass(frozen=True)
class BenchReport:
    """A full microbenchmark run plus the environment it ran in."""

    benchmarks: tuple[KernelBench, ...]
    quick: bool
    generated: str

    def by_name(self) -> dict[str, KernelBench]:
        return {bench.name: bench for bench in self.benchmarks}

    def to_dict(self) -> dict:
        return {
            "schema": TRAJECTORY_SCHEMA_VERSION,
            "generated": self.generated,
            "quick": self.quick,
            "environment": {
                "python": sys.version.split()[0],
                "numpy": np.__version__,
                "numba": numba_status(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
            },
            "benchmarks": [bench.to_dict() for bench in self.benchmarks],
        }


# -- individual kernels -------------------------------------------------------


def _bench_viterbi(quick: bool) -> KernelBench:
    """K=7 rate-1/2 Viterbi: nested state loop vs array-wide update."""
    num_bits = 300 if quick else 1500
    repeats = 2 if quick else 3
    rng = np.random.default_rng(7)
    message = rng.integers(0, 2, size=num_bits).astype(np.int8)
    coded = K7_CODE.encode(message)
    # flip a few bits so the decoder does real error-correction work
    flips = rng.choice(coded.size, size=max(1, coded.size // 200), replace=False)
    coded[flips] ^= 1

    reference_s = _best_of(
        lambda: K7_CODE.decode_hard(coded, backend="reference"), repeats
    )
    vectorized_s = _best_of(
        lambda: K7_CODE.decode_hard(coded, backend="vectorized"), repeats
    )
    return KernelBench(
        name="viterbi_decode",
        description="K=7 rate-1/2 hard-decision Viterbi decode",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"message_bits": num_bits, "constraint_length": 7},
    )


def _bench_frame_tx(quick: bool) -> KernelBench:
    """Frame-chain TX synthesis: Tag loops vs CRC-table + LUT batch."""
    num_frames = 4 if quick else 12
    num_bits = 2048
    repeats = 2 if quick else 3
    config = LinkConfig()
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)
    tag = Tag(config.tag)
    theta = config.incidence_angle_rad
    rng = np.random.default_rng(11)
    payload = rng.integers(0, 2, size=(num_frames, num_bits)).astype(np.int8)

    def reference() -> None:
        for f in range(num_frames):
            frame = tag.make_frame(payload[f])
            tag.reflection_sequence(frame, theta)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(lambda: simulator.tx_reflections(payload), repeats)
    return KernelBench(
        name="frame_chain_tx",
        description="frame TX synthesis: bits -> CRC -> symbols -> reflections",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits, "modulation": "QPSK"},
    )


def _bench_link_end_to_end(quick: bool) -> KernelBench:
    """Whole link chain: per-frame simulate_link vs the batched kernel.

    The simulator is prebuilt (as the vectorized BER backend does);
    the speedup is Amdahl-bounded by the bit-exact per-frame stages the
    batch shares with the reference (RNG order, sync correlation,
    decode tail) — report it honestly rather than cherry-picking.
    """
    num_frames = 4 if quick else 10
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig()
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def vectorized() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate(num_frames, rng)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(vectorized, repeats)
    return KernelBench(
        name="link_end_to_end",
        description="full frame chain (modulate->channel->noise->demod), batched",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits},
    )


def _bench_multipath_apply(quick: bool) -> KernelBench:
    """MultipathChannel.apply: per-call tap rebuild + per-path FFTs vs
    the cached tap grid, shared forward FFTs, and the per-shape delay
    plan (whole/frac decomposition + exp phase ramps hoisted out of the
    per-call path — PR 9 raised this kernel from ~1.2x to ~1.4x by
    caching the plan on the instance).

    The "before" side is the original implementation, kept verbatim as
    ``_apply_reference``.
    """
    # the win is moderate (~1.4x), so quick mode needs more repeats than
    # the big-ratio kernels to keep measurement noise from straddling 1x
    num_calls = 10 if quick else 20
    num_samples = 8880  # one frame at 80 MHz, the hot-path length
    repeats = 4 if quick else 3
    rng = np.random.default_rng(17)
    channel = rician_channel(6.0, 4, 30e-9, rng)
    sig = Signal(
        rng.standard_normal(num_samples) + 1j * rng.standard_normal(num_samples),
        80e6,
    )

    def reference() -> None:
        for _ in range(num_calls):
            channel._apply_reference(sig)

    def vectorized() -> None:
        for _ in range(num_calls):
            channel.apply(sig)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(vectorized, repeats)
    return KernelBench(
        name="multipath_apply",
        description=(
            "tapped-delay-line apply: per-call tap rebuild vs cached grid "
            "+ shared-FFT delay operator"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"calls": num_calls, "samples": num_samples, "paths": 5},
    )


def _bench_link_rician_end_to_end(quick: bool) -> KernelBench:
    """Fading frame chain: serial simulate_link loop vs the batched
    stochastic-channel kernels (the configs that used to hit the
    silent serial fallback).

    Honest-ratio caveat: both sides pay the same bit-exact FFT delay
    operator and fractional-delay phase ramps per frame (linearity
    shortcuts would change the floating-point sums), and the
    ``multipath_apply`` fix above sped the reference side up as well,
    so this ratio is structurally far below the interpreter-bound
    kernels — it measures the remaining per-frame Python overhead that
    batching can actually remove.
    """
    num_frames = 4 if quick else 10
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig(rician_k_db=6.0)
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def vectorized() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate(num_frames, rng)

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(vectorized, repeats)
    return KernelBench(
        name="link_rician_end_to_end",
        description=(
            "full fading frame chain (Rician K=6 dB), batched channel "
            "kernels vs per-frame loop; ratio is bit-exactness-bounded "
            "(shared FFT delay operator on both sides)"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits, "rician_k_db": 6.0},
    )


def _bench_link_end_to_end_fused(quick: bool) -> KernelBench:
    """Whole-budget fused program vs the per-frame serial loop.

    One ``simulate_point`` call takes the entire frame budget (the
    ``backend="fused"`` estimator path) instead of re-entering Python
    per chunk.  Bit-exact, therefore Amdahl-bounded: the serial-order
    RNG pass, the per-row sync correlation and the IIR/FIR filter
    passes are contractually shared with the reference, so the honest
    ratio sits near the vectorized chain's — what the fused program
    buys is the frame-exact whole-budget stopping rule with *no*
    per-chunk re-entry, which is what the sweep executor runs.
    """
    num_frames = 4 if quick else 12
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig()
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def fused() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate_point(
            rng, errors_needed=1 << 30, max_frames=num_frames
        )

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(fused, repeats)
    return KernelBench(
        name="link_end_to_end_fused",
        description=(
            "whole-budget fused sweep point (bit-exact, frame-exact early "
            "exit) vs per-frame serial loop; ratio is bit-exactness-bounded"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits},
    )


def _bench_link_rician_end_to_end_fused(quick: bool) -> KernelBench:
    """Fused whole-budget program on the fading chain, same caveats."""
    num_frames = 4 if quick else 12
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig(rician_k_db=6.0)
    simulator = BatchLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def fused() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate_point(
            rng, errors_needed=1 << 30, max_frames=num_frames
        )

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(fused, repeats)
    return KernelBench(
        name="link_rician_end_to_end_fused",
        description=(
            "whole-budget fused fading sweep point (Rician K=6 dB) vs "
            "per-frame serial loop; bit-exactness-bounded ratio"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"frames": num_frames, "payload_bits": num_bits, "rician_k_db": 6.0},
    )


def _bench_link_fast_tier(quick: bool) -> KernelBench:
    """Statistical fast tier vs the per-frame serial loop.

    Not bit-exact (single precision, bulk RNG, FFT sync, quantised
    Rician taps) — equivalence is pinned statistically by
    ``tests/test_fast_tier.py``.  The trajectory JSON's environment
    block records whether numba compiled the inner kernels or the
    logged pure-numpy fallbacks ran.
    """
    from repro.sim.fastlink import FastLinkSimulator

    num_frames = 6 if quick else 16
    num_bits = 2048
    repeats = 1 if quick else 2
    config = LinkConfig(rician_k_db=6.0)
    simulator = FastLinkSimulator(config, num_payload_bits=num_bits)

    def reference() -> None:
        rng = np.random.default_rng(3)
        for _ in range(num_frames):
            simulate_link(config, num_payload_bits=num_bits, rng=rng)

    def fast() -> None:
        rng = np.random.default_rng(3)
        simulator.simulate_point(
            rng, errors_needed=1 << 30, max_frames=num_frames
        )

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(fast, repeats)
    return KernelBench(
        name="link_fast_tier",
        description=(
            "compiled/statistical fast tier (complex64, bulk RNG, FFT sync, "
            f"numba {numba_status()}) vs per-frame serial loop on the "
            "Rician chain; statistical-equivalence contract, not bit-exact"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={
            "frames": num_frames,
            "payload_bits": num_bits,
            "rician_k_db": 6.0,
            "numba": numba_status(),
        },
    )


def _bench_sweep_adaptive_vs_uniform(quick: bool) -> KernelBench:
    """12-point E3-style Rician waterfall through the sweep engine.

    Reference: the pre-PR posture — uniform schedule, serial link
    backend, chunk_frames=1.  Vectorized: this PR's posture — adaptive
    chunk rounds + vectorized fading kernels.  Results are
    bit-identical point for point (pinned by tests/test_sim_scheduler);
    only the wall-clock differs.  On a 1-CPU runner the adaptive
    schedule contributes load-balancing only when there are worker
    slots to rebalance, so the measured single-worker ratio is the
    vectorized-backend + simulator-memoisation share.
    """
    from repro.sim.executor import BerSweepTask, run_sweep

    num_points = 6 if quick else 12
    # _best_of already runs one untimed warm-up sweep; >= 2 timed
    # repeats keep the CI regression gate (floor 0.6x) from failing on
    # a single noisy run of this comparatively long benchmark.
    repeats = 2
    config = LinkConfig(rician_k_db=6.0)
    values = list(np.linspace(2.0, 13.0, num_points))
    common = dict(
        config=config,
        param="distance_m",
        target_errors=10,
        max_bits=8_192 if quick else 12_288,
        bits_per_frame=1024,
    )
    before = BerSweepTask(chunk_frames=1, link_backend="serial", **common)
    after = BerSweepTask(chunk_frames=8, link_backend="vectorized", **common)

    reference_s = _best_of(
        lambda: run_sweep(values, before, schedule="uniform", seed=0), repeats
    )
    vectorized_s = _best_of(
        lambda: run_sweep(values, after, schedule="adaptive", seed=0), repeats
    )
    return KernelBench(
        name="sweep_adaptive_vs_uniform",
        description=(
            f"{num_points}-point Rician waterfall sweep: uniform schedule + "
            "serial link backend vs adaptive rounds + vectorized kernels "
            "(bit-identical results; 1-CPU ratio excludes the multi-worker "
            "load-balancing win)"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={
            "points": num_points,
            "target_errors": 10,
            "chunk_frames_after": 8,
            "rician_k_db": 6.0,
        },
    )


def _bench_netsim_event_engine(quick: bool) -> KernelBench:
    """Metro MAC at scale: serial engine vs sharded plan/execute/replay.

    Both engines produce byte-identical reports (pinned by
    tests/test_net_shard.py); only the wall clock differs.  The sharded
    path runs here on a serial-backend coordinator — one process — so
    the measured ratio is (hot-path savings from the draw-free planner
    + O(records) replay) net of the coordination overhead, which lands
    near 1x.  The multi-core speedup from fanning the shard-epochs over
    a process pool is E22's claim, not this kernel's: a pool ratio on a
    1-CPU runner would measure fork overhead, not the engine.
    """
    from repro.net.deployment import MultiAPConfig, run_multi_ap
    from repro.net.shard import run_multi_ap_sharded
    from repro.sim.executor import SweepExecutor

    num_tags = 50_000 if quick else 200_000
    num_slots = 300 if quick else 800
    repeats = 2
    config = MultiAPConfig(
        num_tags=num_tags,
        num_slots=num_slots,
        epoch_slots=num_slots,
        grid_rows=3,
        grid_cols=3,
        ap_spacing_m=8.0,
    )

    reference_s = _best_of(lambda: run_multi_ap(config, seed=0), repeats)
    vectorized_s = _best_of(
        lambda: run_multi_ap_sharded(
            config, seed=0, shards=3, executor=SweepExecutor("serial")
        ),
        repeats,
    )
    events = run_multi_ap(config, seed=0).events_processed
    return KernelBench(
        name="netsim_event_engine",
        description=(
            f"{num_tags}-tag 3x3-AP metro MAC: serial engine vs sharded "
            "plan/execute/replay on a single-process coordinator "
            "(byte-identical output; multi-core pool speedup is E22)"
        ),
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={
            "num_tags": num_tags,
            "num_slots": num_slots,
            "shards": 3,
            "events_processed": events,
            "serial_events_per_s": round(events / reference_s, 1),
            "sharded_events_per_s": round(events / vectorized_s, 1),
        },
    )


def _bench_vanatta(quick: bool) -> KernelBench:
    """Van Atta monostatic pattern: per-angle loop vs broadcast grid."""
    num_angles = 361 if quick else 1441
    repeats = 2 if quick else 3
    array = VanAttaArray(num_pairs=8)
    grid = np.linspace(-np.pi / 2, np.pi / 2, num_angles)

    def reference() -> None:
        for theta in grid:
            array.monostatic_gain(float(theta))

    reference_s = _best_of(reference, repeats)
    vectorized_s = _best_of(lambda: array.monostatic_gain_pattern(grid), repeats)
    return KernelBench(
        name="vanatta_pattern",
        description="Van Atta monostatic gain across an incidence-angle grid",
        reference_s=reference_s,
        vectorized_s=vectorized_s,
        repeats=repeats,
        params={"angles": num_angles, "num_pairs": 8},
    )


_BENCHES = (
    _bench_viterbi,
    _bench_frame_tx,
    _bench_link_end_to_end,
    _bench_multipath_apply,
    _bench_link_rician_end_to_end,
    _bench_link_end_to_end_fused,
    _bench_link_rician_end_to_end_fused,
    _bench_link_fast_tier,
    _bench_sweep_adaptive_vs_uniform,
    _bench_netsim_event_engine,
    _bench_vanatta,
)


def run_hotpath_benchmarks(quick: bool = False) -> BenchReport:
    """Time every hot-path kernel pair; returns the full report."""
    generated = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    benches = tuple(bench(quick) for bench in _BENCHES)
    return BenchReport(benchmarks=benches, quick=quick, generated=generated)


def write_trajectory(report: BenchReport, path: str | os.PathLike) -> Path:
    """Write ``report`` as the ``BENCH_hotpaths.json`` trajectory file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
    return target


# -- regression gate ----------------------------------------------------------

#: A measured speedup below ``floor * recorded`` fails the CI gate.  The
#: 0.6 slack absorbs quick-mode noise and runner-to-runner variance
#: while still catching the failure mode that matters: a kernel quietly
#: rerouted back through its Python reference loop collapses to ~1x,
#: which is far below 0.6x of any recorded ratio.
REGRESSION_FLOOR = 0.6


def compare_trajectories(
    old_path: str | os.PathLike, new_path: str | os.PathLike
) -> list[tuple[str, str, str, str]]:
    """Per-kernel speedup deltas between two trajectory JSONs.

    Returns ``(kernel, old, new, delta)`` display rows for
    ``repro bench --compare OLD.json NEW.json`` — kernels present in
    only one file are flagged instead of silently dropped.
    """
    old = load_trajectory_speedups(old_path)
    new = load_trajectory_speedups(new_path)
    rows: list[tuple[str, str, str, str]] = []
    for name in sorted(set(old) | set(new)):
        recorded = old.get(name)
        measured = new.get(name)
        if recorded is None:
            rows.append((name, "-", f"{measured:.2f}x", "new kernel"))
        elif measured is None:
            rows.append((name, f"{recorded:.2f}x", "-", "removed"))
        else:
            sign = "+" if measured >= recorded else ""
            rows.append(
                (
                    name,
                    f"{recorded:.2f}x",
                    f"{measured:.2f}x",
                    f"{sign}{measured - recorded:.2f} ({measured / recorded:.2f}x)",
                )
            )
    return rows


def load_trajectory_speedups(path: str | os.PathLike) -> dict[str, float]:
    """The recorded ``{kernel: speedup}`` map of a trajectory file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        bench["name"]: float(bench["speedup"])
        for bench in payload.get("benchmarks", [])
    }


def check_regression(
    report: BenchReport,
    baseline: str | os.PathLike | dict[str, float],
    floor: float = REGRESSION_FLOOR,
) -> list[str]:
    """Compare ``report`` against a committed trajectory baseline.

    Returns one human-readable failure line per kernel whose measured
    speedup fell below ``floor`` times its recorded value — and per
    baseline kernel missing from the run entirely (a silently dropped
    benchmark must not pass the gate).  An empty list means the gate
    passes.  Kernels present in the run but absent from the baseline
    are ignored (new benches land before their baseline is committed).
    """
    if not 0.0 < floor <= 1.0:
        raise ValueError(f"floor must be in (0, 1], got {floor}")
    recorded = (
        dict(baseline)
        if isinstance(baseline, dict)
        else load_trajectory_speedups(baseline)
    )
    measured = {name: bench.speedup for name, bench in report.by_name().items()}
    failures = []
    for name in sorted(recorded):
        if name not in measured:
            failures.append(
                f"{name}: recorded in the baseline but missing from this run"
            )
            continue
        threshold = floor * recorded[name]
        if measured[name] < threshold:
            failures.append(
                f"{name}: measured {measured[name]:.2f}x < {floor:.2f} * "
                f"recorded {recorded[name]:.2f}x (= {threshold:.2f}x)"
            )
    return failures
