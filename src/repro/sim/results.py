"""Result tables: the rows the paper's tables report, as text.

A small dependency-free table formatter; benches build one per
experiment and print it, and EXPERIMENTS.md embeds the same output.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An ordered table of stringifiable cells."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(cells)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        header = [str(c) for c in self.columns]
        body = [[_fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(str(c) for c in self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        body = [
            "| " + " | ".join(_fmt(c) for c in row) + " |" for row in self.rows
        ]
        return "\n".join([header, rule, *body])

    def to_csv(self, path: str | Path) -> None:
        """Write the table as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows([[_fmt(c) for c in row] for row in self.rows])


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0.0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
