"""The compiled/statistical fast tier of the link simulator.

:class:`FastLinkSimulator` is the ``backend="fast"`` engine behind
:func:`repro.sim.monte_carlo.estimate_link_ber`.  It subclasses
:class:`~repro.sim.batch.BatchLinkSimulator` and replaces the fused
scoring pass with a single-precision, bulk-RNG implementation whose
inner loops run through the optional numba kernels in
:mod:`repro.sim.jit` (pure-numpy fallbacks when numba is absent —
logged, never silent).

Exactness contract — the *statistical tier*
-------------------------------------------
Unlike the ``serial``/``vectorized``/``fused`` backends, the fast tier
is **not** bit-identical to the reference.  It draws the same random
variates from the same distributions but in bulk order (one array call
per stage instead of the documented per-frame interleave), runs the
waveform chain in complex64/float32, detects frames with a batched FFT
correlation instead of ``np.correlate``, quantises Rician NLOS delays
to whole samples, and scores the header against the known transmitted
header bits (a corrupted header that still passes CRC-16 is ~2^-16
rare).  Acceptance is therefore statistical: the Wilson-CI overlap
suite in ``tests/test_fast_tier.py`` pins the fast tier's BER against
the serial reference across SNR points and schemes.  Because results
are not byte-reproducible against the exact tiers, the sweep cache
keeps ``"fast"`` results in their own keyspace
(:class:`repro.sim.executor.BerSweepTask`).

Configurations whose receiver tail carries LMS equalizer state
(``ap.equalizer_taps > 0``) fall back to the exact fused pass — the
per-frame adaptation loop dominates there anyway.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import fft as sp_fft
from scipy import signal as sp_signal

from repro.core.framing import HEADER_TOTAL_BITS, PREAMBLE_SYMBOLS
from repro.core.link import LinkConfig
from repro.core.modulation import BPSK, get_scheme
from repro.core.tag import Tag
from repro.sim import jit
from repro.sim.batch import BatchLinkSimulator

__all__ = ["FastLinkSimulator"]


class FastLinkSimulator(BatchLinkSimulator):
    """Statistical fast tier: whole-budget scoring in single precision.

    Only :meth:`_score_frames` changes; :meth:`simulate_point` (the
    budget loop with frame-exact early exit) and :meth:`simulate` (the
    bit-exact per-frame API) are inherited unchanged, so the stopping
    rule and the public surface match the fused tier exactly — only the
    per-frame ``(errors, detected)`` numbers come from the fast chain.
    """

    def __init__(self, config: LinkConfig, num_payload_bits: int = 2048) -> None:
        super().__init__(config, num_payload_bits)
        self._build_fast_tier()

    # -- precomputation ----------------------------------------------------

    def _build_fast_tier(self) -> None:
        config = self.config
        self._f_exact_tail = config.ap.equalizer_taps > 0
        if self._f_exact_tail:
            return

        # Single-precision casts of the deterministic stage constants.
        self._f_payload_lut = self._payload_lut.astype(np.complex64)
        self._f_square_tx = (
            None if self._square_tx is None else self._square_tx.astype(np.float32)
        )
        self._f_square_rx = (
            None if self._square_rx is None else self._square_rx.astype(np.float32)
        )
        self._f_mixer = None if self._mixer is None else self._mixer.astype(np.complex64)
        self._f_blockage = (
            None
            if self._blockage_gain is None
            else self._blockage_gain.astype(np.float32)
        )
        self._f_switch_ba = (
            None
            if self._switch_ba is None
            else (
                self._switch_ba[0].astype(np.float32),
                self._switch_ba[1].astype(np.float32),
            )
        )
        self._f_channel_taps = (
            None
            if self._channel_taps is None
            else self._channel_taps.astype(np.float32)
        )
        if self._dc_ba is not None:
            self._f_dc_ba = (
                self._dc_ba[0].astype(np.float32),
                self._dc_ba[1].astype(np.float32),
            )
            self._f_dc_zi = self._dc_zi_base.astype(np.float32)
        else:
            self._f_dc_ba = None

        # Frame sync: one batched FFT correlation replaces the per-row
        # np.correlate.  With nfft >= padded_len every valid lag
        # k <= lags-1 only touches input indices k + i <= padded_len - 1,
        # so the circular product has no wraparound at those lags and
        # equals the linear valid-mode correlation.
        template = self._sync_template.astype(np.complex64)
        self._f_lags = self._padded_len - template.size + 1
        nfft = sp_fft.next_fast_len(self._padded_len)
        self._f_nfft = nfft
        self._f_template_spec_conj = np.conj(sp_fft.fft(template, nfft)).astype(
            np.complex64
        )

        # Rician bulk-tap plan (statistical: NLOS delays quantised to
        # whole samples, applied as grouped shift-adds instead of the
        # fractional-delay FFT operator).
        if self._use_rician:
            k_lin = 10.0 ** (config.rician_k_db / 10.0)
            los_power = k_lin / (k_lin + 1.0)  # |los_gain| == 1
            self._f_los_amp = math.sqrt(los_power)
            self._f_nlos_total = 1.0 - los_power
            self._f_num_nlos = config.num_nlos_paths
            self._f_max_delay = config.max_excess_delay_s
            self._f_tau = config.max_excess_delay_s / 3.0

        # Interference plan: static reflectors are constant phasors
        # foldable into the leak term; drifting reflectors keep their
        # slow phase modulation, with the shared sin/cos time ramps
        # hoisted out of the per-batch work.
        environment = config.environment
        tx_amplitude = config.ap.tx_amplitude()
        t = np.arange(self._padded_len, dtype=np.float64) / self._fs
        self._f_static_amps: list[float] = []
        self._f_drifting: list[tuple[float, float, np.ndarray, np.ndarray]] = []
        for reflector in environment.reflectors:
            amp = environment.reflector_amplitude(reflector, tx_amplitude)
            if reflector.drift_rate_hz > 0.0:
                omega_t = 2.0 * math.pi * reflector.drift_rate_hz * t
                self._f_drifting.append(
                    (
                        amp,
                        reflector.drift_amplitude_rad,
                        np.sin(omega_t).astype(np.float32),
                        np.cos(omega_t).astype(np.float32),
                    )
                )
            else:
                self._f_static_amps.append(amp)

        # Receiver-side constants.
        constellation = get_scheme(self._scheme_name).constellation
        self._f_points = constellation.points.astype(np.complex64)
        self._f_bit_labels = constellation.bit_labels.astype(np.int8)
        self._f_mean_point = complex(constellation.mean_point())
        self._f_bpsk_points = BPSK.constellation.points.astype(np.complex64)
        self._f_bpsk_labels = BPSK.constellation.bit_labels.astype(np.int8)
        preamble = PREAMBLE_SYMBOLS.astype(np.complex64)
        self._f_preamble_conj = np.conj(preamble)
        self._f_preamble_energy = float(np.sum(np.abs(PREAMBLE_SYMBOLS) ** 2))

        # The transmitted header is frame-invariant (it only carries the
        # fixed padded length), so the fast tier scores the demodulated
        # header bits against it instead of re-parsing CRC-16 per frame.
        tag = Tag(config.tag)
        frame0 = tag.make_frame(np.zeros(self.num_payload_bits, dtype=np.int8))
        self._f_header_bits = frame0.header.to_bits().astype(np.int8)

    # -- the fast scoring pass ---------------------------------------------

    def _score_frames(
        self, num_frames: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fast-tier ``(bit_errors, detected)`` for a frame block.

        Statistically equivalent to the fused pass (same distributions,
        same receiver decision rules), not bit-identical — see the
        module docstring for the exact deltas.
        """
        if self._f_exact_tail:
            return super()._score_frames(num_frames, rng)

        config = self.config
        n = num_frames
        n_sig = self._n_sig
        padded_len = self._padded_len
        sps = self._sps
        fs = self._fs

        # -- bulk RNG: one array draw per stage ------------------------
        payload = rng.integers(0, 2, size=(n, self.num_payload_bits)).astype(np.int8)
        carrier_phase = rng.uniform(0.0, 2.0 * math.pi, size=n)
        delays = phases = None
        if self._use_rician and self._f_num_nlos > 0:
            delays = np.sort(
                rng.uniform(0.0, self._f_max_delay, size=(n, self._f_num_nlos)), axis=1
            )
            phases = rng.uniform(0.0, 2.0 * math.pi, size=(n, self._f_num_nlos))
        steps = (
            rng.standard_normal((n, n_sig + self._pn_lag), dtype=np.float32)
            if self._use_phase_noise
            else None
        )
        leak_phase = rng.uniform(0.0, 2.0 * math.pi, size=n)
        static_phases = [
            rng.uniform(0.0, 2.0 * math.pi, size=n) for _ in self._f_static_amps
        ]
        drift_draws = [
            (
                rng.uniform(0.0, 2.0 * math.pi, size=n),
                rng.uniform(0.0, 2.0 * math.pi, size=n),
            )
            for _ in self._f_drifting
        ]

        # -- TX: bits -> single-precision reflection waveform ----------
        if self._pad_bits:
            padded_payload = np.concatenate(
                [payload, np.zeros((n, self._pad_bits), dtype=np.int8)], axis=1
            )
        else:
            padded_payload = payload
        reflections = self.tx_reflections(padded_payload).astype(np.complex64)
        wave = np.repeat(reflections, sps, axis=1)
        if self._f_square_tx is not None:
            wave *= self._f_square_tx[None, :]
        if self._f_switch_ba is not None:
            wave = sp_signal.lfilter(
                self._f_switch_ba[0], self._f_switch_ba[1], wave, axis=-1
            )
        factors = (self._amplitude * np.exp(1j * carrier_phase)).astype(np.complex64)
        signal = wave * factors[:, None]

        if self._use_rician:
            signal = self._f_apply_rician(signal, delays, phases)
        if self._f_mixer is not None:
            signal *= self._f_mixer[None, :]
        if self._f_blockage is not None:
            signal *= self._f_blockage[None, :]
        if steps is not None:
            path = np.cumsum(steps * np.float32(self._pn_sqrt_step), axis=1)
            residual = path[:, self._pn_lag :] - path[:, : -self._pn_lag]
            signal *= np.exp(1j * residual)

        # -- composite: leak + clutter + signal window + AWGN ----------
        constant = self._leak_amp * np.exp(1j * leak_phase)
        for amp, phase0 in zip(self._f_static_amps, static_phases):
            constant = constant + amp * np.exp(1j * phase0)
        composite = np.empty((n, padded_len), dtype=np.complex64)
        composite[:] = constant.astype(np.complex64)[:, None]
        for (amp, drift_amp, sin_wt, cos_wt), (phase0, drift_phase) in zip(
            self._f_drifting, drift_draws
        ):
            phase = phase0.astype(np.float32)[:, None] + np.float32(drift_amp) * (
                sin_wt[None, :] * np.cos(drift_phase).astype(np.float32)[:, None]
                + cos_wt[None, :] * np.sin(drift_phase).astype(np.float32)[:, None]
            )
            composite += np.float32(amp) * np.exp(1j * phase)
        composite[:, self._guard : self._guard + n_sig] += signal
        if self._noise_sigma is not None:
            real = rng.standard_normal((n, padded_len), dtype=np.float32)
            imag = rng.standard_normal((n, padded_len), dtype=np.float32)
            composite += np.float32(self._noise_sigma) * (real + 1j * imag)

        # -- RX front end ----------------------------------------------
        work = composite
        if self._f_dc_ba is not None:
            b, a = self._f_dc_ba
            level = np.mean(work[:, : min(64, padded_len)], axis=1)
            zi = self._f_dc_zi[None, :] * level[:, None]
            work, _ = sp_signal.lfilter(b, a, work, axis=-1, zi=zi)
        if config.ap.adc is not None:
            work = self._adc_quantize(work)
        if self._f_square_rx is not None:
            work = work * self._f_square_rx[None, :]
            if self._f_channel_taps is not None:
                filtered_rows = sp_signal.lfilter(
                    self._f_channel_taps, np.ones(1, dtype=np.float32), work, axis=-1
                )
                delay = (self._f_channel_taps.size - 1) // 2
                if delay:
                    work = np.concatenate(
                        [
                            filtered_rows[:, delay:],
                            np.zeros((n, delay), dtype=filtered_rows.dtype),
                        ],
                        axis=1,
                    )
                else:
                    work = filtered_rows

        # -- frame sync: batched FFT correlation -----------------------
        starts = self._f_detect_starts(work)

        # -- matched filter at symbol instants only --------------------
        # The integrate-and-dump output at sample i is the mean of the
        # last sps inputs; sampling it only at the symbol instants turns
        # the full FIR pass into one cumulative sum plus two gathers.
        cumsum = np.empty((n, padded_len + 1), dtype=np.complex64)
        cumsum[:, 0] = 0.0
        np.cumsum(work, axis=1, out=cumsum[:, 1:])

        min_symbols = PREAMBLE_SYMBOLS.size + HEADER_TOTAL_BITS
        miss = self._padded_bits // 2
        errors = np.full(n, miss, dtype=np.int64)
        detected = np.zeros(n, dtype=bool)

        firsts = starts + sps - 1
        available = np.where(
            (starts >= 0) & (firsts < padded_len),
            (padded_len - firsts + sps - 1) // sps,
            0,
        )
        detected[(starts >= 0) & (available >= min_symbols)] = True
        full = np.nonzero((starts >= 0) & (available >= self._n_sym))[0]
        if full.size == 0:
            return errors, detected

        sym_idx = firsts[full][:, None] + np.arange(self._n_sym, dtype=np.int64)[
            None, :
        ] * sps
        high = np.take_along_axis(cumsum[full], sym_idx + 1, axis=1)
        low = np.take_along_axis(cumsum[full], sym_idx + 1 - sps, axis=1)
        symbols = (high - low) * np.float32(1.0 / sps)

        lead_len = np.maximum(0, starts[full] - sps)
        corrected = lead_len >= 4 * sps
        if np.any(corrected):
            means = cumsum[full[corrected], lead_len[corrected]] / lead_len[
                corrected
            ].astype(np.float32)
            symbols[corrected] -= means[:, None]

        # -- decode: gain, header check, payload demod -----------------
        num_preamble = PREAMBLE_SYMBOLS.size
        gains = symbols[:, :num_preamble] @ self._f_preamble_conj
        gains = gains / np.float32(self._f_preamble_energy)
        zero_gain = gains == 0
        detected[full] = True
        if np.all(zero_gain):
            return errors, detected
        gains[zero_gain] = 1.0
        equalised = symbols / gains[:, None]

        header_syms = equalised[:, num_preamble : num_preamble + HEADER_TOTAL_BITS]
        header_idx = jit.nearest_symbol_indices(
            header_syms.ravel(), self._f_bpsk_points
        )
        header_bits = (
            self._f_bpsk_labels[header_idx]
            .reshape(full.size, -1)
            .astype(np.int8)
        )
        header_ok = np.all(header_bits == self._f_header_bits[None, :], axis=1)
        header_ok &= ~zero_gain
        if not np.any(header_ok):
            return errors, detected

        payload_syms = equalised[header_ok, num_preamble + HEADER_TOTAL_BITS :]
        if abs(self._f_mean_point) > 1e-3:
            offset = payload_syms.mean(axis=1) - np.complex64(self._f_mean_point)
            payload_syms = payload_syms - offset[:, None]
        indices = jit.nearest_symbol_indices(payload_syms.ravel(), self._f_points)
        bits = (
            self._f_bit_labels[indices]
            .reshape(int(np.count_nonzero(header_ok)), -1)
            .astype(np.int8)
        )
        sent = padded_payload[full[header_ok]]
        errors[full[header_ok]] = np.count_nonzero(
            bits[:, : self._padded_bits] != sent, axis=1
        )
        return errors, detected

    # -- helpers -----------------------------------------------------------

    def _f_detect_starts(self, work: np.ndarray) -> np.ndarray:
        """Batched FFT preamble correlation; same CFAR rule as the
        exact tier's :meth:`_detect_starts`, float32 statistics."""
        n = work.shape[0]
        starts = np.full(n, -1, dtype=np.int64)
        if self._f_lags <= 0:
            return starts
        spectra = sp_fft.fft(work, self._f_nfft, axis=1)
        spectra *= self._f_template_spec_conj[None, :]
        corr = sp_fft.ifft(spectra, axis=1)[:, : self._f_lags]
        mag = np.abs(corr)
        peaks = np.argmax(mag, axis=1)
        floors = np.median(mag, axis=1)
        peak_vals = mag[np.arange(n), peaks]
        positive_floor = floors > 0.0
        hit = np.empty(n, dtype=bool)
        hit[~positive_floor] = peak_vals[~positive_floor] > 0.0
        idx = np.nonzero(positive_floor)[0]
        hit[idx] = (peak_vals[idx] / floors[idx]) >= self._threshold_ratio()
        starts[hit] = peaks[hit]
        return starts

    def _f_apply_rician(
        self,
        signal: np.ndarray,
        delays: np.ndarray | None,
        phases: np.ndarray | None,
    ) -> np.ndarray:
        """Per-frame Rician fading with whole-sample NLOS delays.

        The LOS tap is a real scalar; NLOS taps come from the
        :func:`repro.sim.jit.rician_gains` kernel and are applied as
        shift-adds grouped by quantised delay (duplicate
        ``(frame, delay)`` taps merge by gain summation — linearity).
        """
        n, n_sig = signal.shape
        out = signal * np.complex64(self._f_los_amp)
        if delays is None or self._f_num_nlos == 0:
            return out
        gains = jit.rician_gains(
            delays, phases, self._f_tau, self._f_nlos_total
        ).astype(np.complex64)
        wholes = np.floor(delays * self._fs).astype(np.int64)
        frames = np.repeat(np.arange(n, dtype=np.int64), self._f_num_nlos)
        wholes_flat = wholes.ravel()
        keys = wholes_flat * n + frames
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        merged = np.zeros(unique_keys.size, dtype=np.complex64)
        np.add.at(merged, inverse, gains.ravel())
        key_wholes = unique_keys // n
        key_frames = unique_keys % n
        for whole in np.unique(key_wholes):
            group = key_wholes == whole
            rows = key_frames[group]
            taps = merged[group][:, None]
            w = int(whole)
            if w == 0:
                out[rows] += signal[rows] * taps
            elif w < n_sig:
                out[rows, w:] += signal[rows, : n_sig - w] * taps
        return out
