"""Tests for repro.baselines."""

import math

import numpy as np
import pytest

from repro.baselines.active_radio import ActiveMmWaveRadio
from repro.baselines.features import FEATURE_MATRIX
from repro.baselines.rfid import RfidBackscatter
from repro.baselines.single_antenna_tag import SingleAntennaTag
from repro.baselines.wifi_backscatter import WifiBackscatter
from repro.core.energy import TagEnergyModel
from repro.core.link import LinkConfig, link_snr_db


class TestActiveRadio:
    def test_one_way_slope_is_d2(self):
        radio = ActiveMmWaveRadio()
        near = radio.snr_db(1.0, 10e6)
        far = radio.snr_db(10.0, 10e6)
        assert near - far == pytest.approx(20.0, abs=1e-9)

    def test_energy_per_bit_dominated_by_fixed_power(self):
        radio = ActiveMmWaveRadio()
        assert radio.energy_per_bit_nj(10e6) == pytest.approx(
            radio.total_tx_power_w() / 10e6 * 1e9
        )

    def test_burns_far_more_than_tag(self):
        radio = ActiveMmWaveRadio()
        tag = TagEnergyModel().report("QPSK", 10e6)
        ratio = radio.energy_per_bit_nj(20e6) / tag.energy_per_bit_nj
        assert ratio > 4  # at matched rate; grows with rate

    def test_longer_range_than_backscatter(self):
        # who-wins check: at 20 m the active link still has SNR while
        # the backscatter link is far below threshold.
        radio = ActiveMmWaveRadio()
        backscatter_snr = link_snr_db(LinkConfig(distance_m=20.0))
        assert radio.snr_db(20.0, 10e6) > backscatter_snr + 20

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            ActiveMmWaveRadio().snr_db(5.0, 0.0)


class TestRfid:
    def test_long_range_at_low_rate(self):
        rfid = RfidBackscatter()
        assert rfid.snr_db(10.0) > 10.0  # Gen2 reads at 10 m

    def test_rate_capped(self):
        rfid = RfidBackscatter()
        with pytest.raises(ValueError):
            rfid.energy_per_bit_j(10e6)

    def test_energy_per_bit_low_but_rate_poor(self):
        rfid = RfidBackscatter()
        # tags are tiny consumers, but the ceiling is ~640 kbps
        assert rfid.energy_per_bit_nj() < 1.0
        assert rfid.max_bit_rate_hz < 1e6

    def test_mmtag_rate_advantage(self):
        # the axis mmTag wins on: orders of magnitude more throughput
        from repro.core.tag import TagConfig

        assert TagConfig().bit_rate_hz() > 20 * RfidBackscatter().max_bit_rate_hz


class TestWifiBackscatter:
    def test_effective_throughput_haircut(self):
        wifi = WifiBackscatter(channel_share=0.1)
        assert wifi.effective_throughput_hz() == pytest.approx(0.1 * wifi.max_bit_rate_hz)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            WifiBackscatter(channel_share=0.0)

    def test_snr_positive_indoors(self):
        assert WifiBackscatter().snr_db(5.0) > 0

    def test_rate_ceiling_enforced(self):
        with pytest.raises(ValueError):
            WifiBackscatter().energy_per_bit_j(100e6)


class TestSingleAntennaTag:
    def test_loses_array_gain_at_broadside(self):
        from repro.em.vanatta import VanAttaArray

        single = SingleAntennaTag()
        vanatta = VanAttaArray(num_pairs=4, line_loss_db=0.0)
        delta_db = vanatta.monostatic_gain_db(0.0) - single.monostatic_gain_db(0.0)
        # (N_elem)^2 = 64 -> 18 dB
        assert delta_db == pytest.approx(18.06, abs=0.1)

    def test_rolls_off_with_angle(self):
        single = SingleAntennaTag()
        assert single.monostatic_gain(math.radians(45.0)) < single.monostatic_gain(0.0)

    def test_pattern_shape(self):
        grid = np.radians(np.linspace(-60, 60, 7))
        pattern = SingleAntennaTag().retro_pattern(grid)
        assert pattern.argmax() == 3  # broadside


class TestFeatureMatrix:
    def test_mmtag_row_matches_cited_facts(self):
        mmtag = next(f for f in FEATURE_MATRIX if "mmTag" in f.name)
        assert mmtag.uplink
        assert not mmtag.downlink
        assert not mmtag.localization
        assert not mmtag.orientation_sensing
        assert mmtag.energy_per_bit_nj == pytest.approx(2.4)

    def test_four_systems_compared(self):
        assert len(FEATURE_MATRIX) == 4

    def test_rows_render(self):
        for features in FEATURE_MATRIX:
            row = features.row()
            assert len(row) == 6
            assert all(isinstance(cell, str) for cell in row)
