"""Tests for repro.dsp.filters."""

import numpy as np
import pytest

from repro.dsp.filters import (
    dc_block,
    design_fir_bandpass,
    design_fir_highpass,
    design_fir_lowpass,
    fir_filter,
    moving_average,
    single_pole_lowpass,
)
from repro.dsp.signal import Signal


def _tone(freq, fs=1e6, duration=2e-3):
    return Signal.tone(frequency=freq, sample_rate=fs, duration=duration)


class TestLowpassDesign:
    def test_passes_low_frequency(self):
        taps = design_fir_lowpass(50e3, 1e6, 129)
        out = fir_filter(_tone(10e3), taps)
        # ignore edges where the filter has not filled
        assert out.slice_time(5e-4, 1.5e-3).power() == pytest.approx(1.0, abs=0.05)

    def test_rejects_high_frequency(self):
        taps = design_fir_lowpass(50e3, 1e6, 129)
        out = fir_filter(_tone(200e3), taps)
        assert out.slice_time(5e-4, 1.5e-3).power() < 1e-3

    def test_dc_gain_is_unity(self):
        taps = design_fir_lowpass(50e3, 1e6)
        assert np.sum(taps) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("cutoff", [0.0, -10.0, 6e5])
    def test_rejects_bad_cutoff(self, cutoff):
        with pytest.raises(ValueError):
            design_fir_lowpass(cutoff, 1e6)

    def test_rejects_tiny_tap_count(self):
        with pytest.raises(ValueError):
            design_fir_lowpass(1e3, 1e6, num_taps=2)


class TestHighpassDesign:
    def test_rejects_dc(self):
        # windowed designs are not exactly null at DC; -50 dB is plenty
        taps = design_fir_highpass(100e3, 1e6)
        assert abs(np.sum(taps)) < 3e-3

    def test_passes_high_frequency(self):
        taps = design_fir_highpass(50e3, 1e6, 129)
        out = fir_filter(_tone(300e3), taps)
        assert out.slice_time(5e-4, 1.5e-3).power() == pytest.approx(1.0, abs=0.05)

    def test_even_taps_bumped_to_odd(self):
        taps = design_fir_highpass(50e3, 1e6, num_taps=128)
        assert taps.size % 2 == 1


class TestBandpassDesign:
    def test_passes_in_band(self):
        taps = design_fir_bandpass(80e3, 120e3, 1e6, 201)
        out = fir_filter(_tone(100e3), taps)
        assert out.slice_time(5e-4, 1.5e-3).power() == pytest.approx(1.0, abs=0.1)

    def test_rejects_out_of_band_both_sides(self):
        taps = design_fir_bandpass(80e3, 120e3, 1e6, 201)
        for freq in (10e3, 300e3):
            out = fir_filter(_tone(freq), taps)
            assert out.slice_time(5e-4, 1.5e-3).power() < 1e-2

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            design_fir_bandpass(120e3, 80e3, 1e6)


class TestFirFilter:
    def test_delay_compensation_keeps_alignment(self):
        taps = design_fir_lowpass(100e3, 1e6, 65)
        impulse = Signal(np.concatenate([[1.0], np.zeros(199)]), 1e6)
        out = fir_filter(impulse, taps, compensate_delay=True)
        assert int(np.argmax(np.abs(out.samples))) == 0

    def test_without_compensation_peak_at_group_delay(self):
        taps = design_fir_lowpass(100e3, 1e6, 65)
        impulse = Signal(np.concatenate([[1.0], np.zeros(199)]), 1e6)
        out = fir_filter(impulse, taps, compensate_delay=False)
        assert int(np.argmax(np.abs(out.samples))) == 32


class TestDcBlock:
    def test_removes_constant_offset(self):
        sig = Signal(np.full(4000, 3.0 + 1j), 1e6)
        out = dc_block(sig, pole=0.999)
        assert out.slice_time(1e-3, 4e-3).power() < 1e-8

    def test_no_startup_transient_for_constant_input(self):
        sig = Signal(np.full(100, 5.0), 1e6)
        out = dc_block(sig, pole=0.999)
        assert np.max(np.abs(out.samples)) < 1e-9

    def test_passes_high_frequency_modulation(self):
        sig = _tone(100e3, fs=1e6, duration=1e-3)
        out = dc_block(sig, pole=0.999)
        assert out.power() == pytest.approx(1.0, rel=0.05)

    def test_preserves_modulated_plus_offset(self):
        tone = _tone(100e3, fs=1e6, duration=1e-3)
        offset = Signal(np.full(tone.num_samples, 10.0), 1e6)
        out = dc_block(tone + offset, pole=0.999)
        # the tone survives, the offset dies
        assert out.power() == pytest.approx(1.0, rel=0.1)

    @pytest.mark.parametrize("pole", [0.0, 1.0, 1.5, -0.5])
    def test_rejects_bad_pole(self, pole):
        with pytest.raises(ValueError):
            dc_block(Signal.zeros(4, 1e6), pole=pole)

    def test_rejects_bad_init_window(self):
        with pytest.raises(ValueError):
            dc_block(Signal.zeros(4, 1e6), init_window=0)

    def test_empty_signal_passthrough(self):
        out = dc_block(Signal.zeros(0, 1e6))
        assert out.num_samples == 0


class TestMovingAverage:
    def test_flat_input_unchanged(self):
        sig = Signal(np.ones(20), 1e6)
        out = moving_average(sig, 4)
        assert np.allclose(out.samples[4:], 1.0)

    def test_window_of_one_is_identity(self):
        sig = Signal(np.arange(5, dtype=float), 1e6)
        out = moving_average(sig, 1)
        assert np.allclose(out.samples, sig.samples)

    def test_noise_variance_reduced_by_window(self, rng):
        noise = rng.standard_normal(200_000) + 1j * rng.standard_normal(200_000)
        sig = Signal(noise, 1e6)
        out = moving_average(sig, 8)
        assert out.power() == pytest.approx(sig.power() / 8.0, rel=0.05)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            moving_average(Signal.zeros(4, 1e6), 0)


class TestSinglePoleLowpass:
    def test_dc_gain_unity(self):
        sig = Signal(np.ones(50_000), 1e6)
        out = single_pole_lowpass(sig, 10e3)
        assert abs(out.samples[-1]) == pytest.approx(1.0, rel=1e-3)

    def test_step_rise_time_matches_bandwidth(self):
        fs = 1e9
        bandwidth = 350e6 * 0  # placeholder replaced below
        bandwidth = 35e6  # tr = 0.35/B = 10 ns
        step = Signal(np.ones(5000), fs)
        out = single_pole_lowpass(step, bandwidth)
        magnitude = np.abs(out.samples)
        t10 = np.argmax(magnitude >= 0.1) / fs
        t90 = np.argmax(magnitude >= 0.9) / fs
        assert (t90 - t10) == pytest.approx(0.35 / bandwidth, rel=0.05)

    def test_attenuates_above_cutoff(self):
        sig = _tone(200e3, fs=1e6, duration=2e-3)
        out = single_pole_lowpass(sig, 20e3)
        # one-pole rolloff: ~20 dB at 10x cutoff
        steady = out.slice_time(1e-3, 2e-3).power()
        assert steady == pytest.approx(10 ** (-20 / 10), rel=0.5)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            single_pole_lowpass(Signal.zeros(4, 1e6), 0.0)
