"""Cross-layer consistency: analytic slot-success vs real waveform bursts.

The network layer abstracts every MAC slot to a Bernoulli draw whose
probability comes from :class:`~repro.net.link_model.LinkBudgetModel`
(analytic budget → theoretical BER → ``(1-BER)^bits``).  These tests
close the loop against the waveform substrate: at a grid of matched
operating points (distance × incidence angle × blockage), the empirical
frame-success rate of real :func:`~repro.core.link.simulate_link`
bursts must agree with the analytic probability within a statistical
bound.

The bound is ``3σ`` binomial noise plus a small systematic allowance:
the waveform chain carries impairments the theoretical BER curve does
not (phase noise, imperfect sync), which depress success on the steep
part of the cliff.  The allowance is calibrated to cover that gap while
still failing on a mis-anchored budget (a 1 dB SNR bookkeeping error
moves cliff probabilities by far more).

Everything is seeded — the empirical rates are exact reproducible
numbers, so the assertions cannot flake.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.channel.blockage import BlockageEvent
from repro.channel.environment import Environment
from repro.core.ap import APConfig
from repro.core.link import LinkConfig, simulate_link
from repro.core.tag import TagConfig
from repro.net.link_model import LinkBudgetModel

_FRAME_BITS = 64
_BURSTS = 200
#: Systematic model-vs-waveform allowance (see module docstring).
_SYSTEMATIC = 0.08

#: (distance_m, angle_deg, one_way_blockage_db) — spans the cell from
#: deep inside coverage, across the BER cliff, to past the edge; the
#: blockage rows sit where 2A dB of extra loss lands mid-cliff.
_GRID = [
    (2.0, 0.0, 0.0),
    (2.0, 25.0, 0.0),
    (13.0, 0.0, 0.0),
    (13.0, 25.0, 0.0),
    (14.0, 0.0, 0.0),
    (14.0, 25.0, 0.0),
    (16.0, 0.0, 0.0),
    (4.2, 0.0, 10.0),
    (4.4, 25.0, 10.0),
    (13.0, 0.0, 10.0),
]


def _model() -> LinkBudgetModel:
    return LinkBudgetModel(
        TagConfig(), APConfig(), Environment.anechoic(), _FRAME_BITS
    )


def _empirical_rate(
    distance_m: float, angle_deg: float, blockage_db: float, seed: int
) -> float:
    config = LinkConfig(
        distance_m=distance_m,
        incidence_angle_deg=angle_deg,
        tag=TagConfig(),
        ap=APConfig(),
        environment=Environment.anechoic(),
        blockage_events=(
            (BlockageEvent(0.0, 1.0, blockage_db),) if blockage_db else ()
        ),
    )
    rng = np.random.default_rng(seed)
    hits = sum(
        simulate_link(config, num_payload_bits=_FRAME_BITS, rng=rng).frame_success
        for _ in range(_BURSTS)
    )
    return hits / _BURSTS


class TestModelMatchesWaveform:
    @pytest.mark.parametrize("distance_m,angle_deg,blockage_db", _GRID)
    def test_slot_success_within_statistical_bound(
        self, distance_m, angle_deg, blockage_db
    ):
        model = _model()
        p_model = float(
            model.frame_success_probability(
                np.array([distance_m]),
                np.array([angle_deg]),
                extra_attenuation_db=blockage_db,
            )[0]
        )
        p_emp = _empirical_rate(
            distance_m, angle_deg, blockage_db, seed=hash(
                (distance_m, angle_deg, blockage_db)
            ) % (2**31),
        )
        sigma = max(
            math.sqrt(p_model * (1.0 - p_model) / _BURSTS), 1.0 / _BURSTS
        )
        bound = 3.0 * sigma + _SYSTEMATIC
        assert abs(p_emp - p_model) <= bound, (
            f"d={distance_m} ang={angle_deg} blk={blockage_db}: "
            f"model {p_model:.3f} vs empirical {p_emp:.3f} "
            f"(bound {bound:.3f})"
        )


class TestMatchedSnrEquivalences:
    """The model's own SNR bookkeeping, checked against itself and the
    waveform at *matched* SNR rather than matched geometry."""

    def test_blockage_equals_equivalent_distance(self):
        # 2A dB of blockage is exactly the d^-4 cost of moving the tag
        # out by 10^(2A/40): the model must price both identically
        model = _model()
        a_db = 10.0
        for d in (3.0, 5.0, 8.0):
            equivalent = d * 10.0 ** (2.0 * a_db / 40.0)
            blocked = model.frame_success_probability(
                np.array([d]), extra_attenuation_db=a_db
            )[0]
            moved = model.frame_success_probability(np.array([equivalent]))[0]
            assert blocked == pytest.approx(moved, abs=1e-12), d

    def test_empirical_rate_is_monotone_in_distance(self):
        rates = [
            _empirical_rate(d, 0.0, 0.0, seed=77) for d in (12.0, 14.0, 16.0)
        ]
        assert rates[0] > rates[2], rates
        assert rates == sorted(rates, reverse=True), rates

    def test_empirical_blockage_depresses_success(self):
        clear = _empirical_rate(13.0, 0.0, 0.0, seed=78)
        blocked = _empirical_rate(13.0, 0.0, 10.0, seed=78)
        assert blocked < clear

    def test_vectorised_success_matches_scalar_path(self):
        # frame_success_from_snr_db's unique-bucket vectorisation must
        # agree with per-element evaluation bit for bit
        model = _model()
        snrs = np.linspace(-2.0, 14.0, 33)
        vector = model.frame_success_from_snr_db(snrs)
        scalar = np.array(
            [
                float(model.frame_success_from_snr_db(np.array([s]))[0])
                for s in snrs
            ]
        )
        np.testing.assert_array_equal(vector, scalar)
        assert np.all(np.diff(vector) >= 0.0)  # monotone in SNR
