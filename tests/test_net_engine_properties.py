"""Property-based tests (hypothesis) for the discrete-event engine.

The example-based suite in ``tests/test_net_engine.py`` pins the
engine's contracts at hand-picked schedules; this module drives the
same two contracts across *randomised* schedules and registration
patterns:

* **Total ``(time, seq)`` order** — any batch of scheduled events,
  including same-time ties, nested scheduling and random cancellations,
  pops in strictly increasing ``(time, seq)`` order.
* **Registration-order RNG streams** — a process's draw sequence is a
  pure function of (root seed, registration slot).  In particular,
  shuffling the registration order of *toggled-off* processes among
  their own slots, or letting them draw arbitrarily, must not shift any
  active process's stream — and therefore not the run's trace digest.
  This is the invariant that lets :func:`repro.net.sim.run_netsim` and
  :func:`repro.net.deployment.run_multi_ap` register every process
  unconditionally and stay byte-deterministic as features toggle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.engine import Process, Simulator

#: Schedules drawn over a coarse float grid so same-time ties are
#: common (the interesting case), yet times stay exactly representable.
_times = st.lists(
    st.integers(0, 12).map(lambda k: k * 0.25),
    min_size=1,
    max_size=50,
)


class TestEventOrderProperties:
    @given(times=_times)
    def test_events_pop_in_time_then_seq_order(self, times):
        sim = Simulator(0)
        popped = []
        handles = [
            sim.schedule(t, lambda k=k: popped.append(k))
            for k, t in enumerate(times)
        ]
        assert sim.run() == len(times)
        assert len(popped) == len(times)
        keys = [(times[k], handles[k].seq) for k in popped]
        assert keys == sorted(keys)
        # ties broken strictly by scheduling order
        for a, b in zip(popped, popped[1:]):
            if times[a] == times[b]:
                assert a < b

    @given(times=_times, doomed=st.sets(st.integers(0, 49)))
    def test_cancellation_preserves_survivor_order(self, times, doomed):
        sim = Simulator(0)
        popped = []
        handles = [
            sim.schedule(t, lambda k=k: popped.append(k))
            for k, t in enumerate(times)
        ]
        for k in doomed:
            if k < len(handles):
                sim.cancel(handles[k])
        sim.run()
        survivors = [k for k in range(len(times)) if k not in doomed]
        assert sorted(popped) == survivors
        keys = [(times[k], handles[k].seq) for k in popped]
        assert keys == sorted(keys)

    @given(
        times=_times,
        child_delays=st.lists(
            st.integers(0, 4).map(lambda k: k * 0.25),
            min_size=1,
            max_size=50,
        ),
    )
    def test_nested_scheduling_keeps_total_order(self, times, child_delays):
        # every event spawns one child at now + delay; children get
        # higher seqs than anything already queued, so the global
        # (time, seq) log must still come out sorted
        sim = Simulator(0)
        log = []

        def parent(k, t):
            delay = child_delays[k % len(child_delays)]
            handle = sim.schedule(delay, lambda: log.append(("child", sim.now)))
            log.append(("parent", sim.now, handle.seq))

        for k, t in enumerate(times):
            sim.schedule(t, lambda k=k, t=t: parent(k, t))
        sim.run()
        observed_times = [entry[1] for entry in log]
        assert observed_times == sorted(observed_times)
        assert sum(1 for e in log if e[0] == "child") == len(times)

    @given(times=_times, boundary=st.integers(0, 12).map(lambda k: k * 0.25))
    def test_run_until_splits_cleanly(self, times, boundary):
        # running to a boundary then draining must execute the same
        # total order as one uninterrupted run
        def run(split):
            sim = Simulator(0)
            popped = []
            for k, t in enumerate(times):
                sim.schedule(t, lambda k=k: popped.append(k))
            if split:
                sim.run(until=boundary)
                assert all(times[k] <= boundary for k in popped)
            sim.run()
            return popped

        assert run(split=True) == run(split=False)


def _slot_reference(seed: int, slot: int, n_slots: int) -> np.ndarray:
    """The draws a process in ``slot`` of ``n_slots`` must produce."""
    children = np.random.SeedSequence(seed).spawn(n_slots)
    return np.random.default_rng(children[slot]).random(8)


class TestRngStreamProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_slots=st.integers(1, 8),
        active_slot=st.integers(0, 7),
    )
    def test_stream_is_pure_function_of_seed_and_slot(
        self, seed, n_slots, active_slot
    ):
        active_slot %= n_slots
        sim = Simulator(seed)
        procs = [sim.add_process(Process(f"p{i}")) for i in range(n_slots)]
        np.testing.assert_array_equal(
            procs[active_slot].rng.random(8),
            _slot_reference(seed, active_slot, n_slots),
        )

    @given(
        seed=st.integers(0, 2**31 - 1),
        draws=st.lists(st.integers(0, 64), min_size=3, max_size=3),
    )
    def test_idle_draw_volume_cannot_shift_other_streams(self, seed, draws):
        # however much the other processes draw, slot 1's stream is
        # untouched — interleaving independence, the engine's core claim
        sim = Simulator(seed)
        a = sim.add_process(Process("a"))
        b = sim.add_process(Process("b"))
        c = sim.add_process(Process("c"))
        for proc, n in zip((a, b, c), draws):
            proc.rng.random(n)
        follow_on = b.rng.random(8)
        reference = np.random.default_rng(
            np.random.SeedSequence(seed).spawn(3)[1]
        ).random(draws[1] + 8)[draws[1] :]
        np.testing.assert_array_equal(follow_on, reference)

    @given(
        seed=st.integers(0, 2**31 - 1),
        idle_order=st.permutations(["w", "x", "y", "z"]),
        active_slot=st.integers(0, 4),
    )
    @settings(max_examples=40)
    def test_shuffled_idle_registration_keeps_the_digest(
        self, seed, idle_order, active_slot
    ):
        """Toggled-off processes may register in any order among their
        own slots without perturbing the active process's digest."""

        class Ticker(Process):
            def start(self):
                self.schedule(0.0, self.tick)

            def tick(self, i=0):
                self.trace("tick", i=i, draw=float(self.rng.random()))
                if i < 10:
                    self.schedule(0.5, lambda: self.tick(i + 1))

        def digest(order):
            sim = Simulator(seed)
            names = list(order)
            names.insert(active_slot, "active")
            procs = []
            for name in names:
                cls = Ticker if name == "active" else Process
                procs.append(sim.add_process(cls(name)))
            for proc in procs:
                proc.start()  # idle Process.start() is a no-op
            sim.run()
            return sim.trace.digest()

        assert digest(idle_order) == digest(["w", "x", "y", "z"])

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_moving_the_active_slot_changes_the_stream(self, seed):
        # the contrapositive: registration order *is* load-bearing —
        # giving the active process a different slot yields different
        # draws (under spawn-child independence)
        def first_draws(slot):
            sim = Simulator(seed)
            procs = [sim.add_process(Process(f"p{i}")) for i in range(2)]
            return procs[slot].rng.random(8)

        assert not np.array_equal(first_draws(0), first_draws(1))
