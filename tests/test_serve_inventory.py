"""Bounded-memory live inventory: LRU/TTL eviction and canonical state.

The retention contract: ``tracked`` never exceeds ``max_tags``,
eviction order is deterministic (``(last_seen_s, tag_id)`` ascending),
and the canonical state pickle is a pure function of the observation
stream — the witness the daemon's byte-identical replay reduces to.
"""

from __future__ import annotations

import pickle

import pytest

from repro.serve.inventory import SERVE_STATE_SCHEMA, LiveInventory


class TestObserve:
    def test_new_and_repeat_reads(self):
        inv = LiveInventory(max_tags=10)
        assert inv.observe(7, 0, 1.0, bits=64) is True
        assert inv.observe(7, 0, 2.0, bits=64) is False
        record = inv.record(7)
        assert record is not None
        assert record["reads"] == 2
        assert record["bits_total"] == 128
        assert record["first_seen_s"] == 1.0
        assert record["last_seen_s"] == 2.0

    def test_handoff_counted_on_ap_change(self):
        inv = LiveInventory(max_tags=10)
        inv.observe(1, 0, 1.0)
        inv.observe(1, 2, 2.0)
        inv.observe(1, 2, 3.0)
        inv.observe(1, 0, 4.0)
        record = inv.record(1)
        assert record["serving_ap"] == 0
        assert record["handoff_count"] == 2
        assert inv.total_handoffs == 2

    def test_ewma_rate_converges(self):
        inv = LiveInventory(max_tags=4, ewma_alpha=0.5)
        for i in range(50):
            inv.observe(1, 0, float(i))  # 1 read per second
        assert inv.record(1)["ewma_rate_hz"] == pytest.approx(1.0, rel=1e-6)

    def test_untracked_record_is_none(self):
        inv = LiveInventory(max_tags=4)
        assert inv.record(99) is None


class TestLruEviction:
    def test_tracked_never_exceeds_cap(self):
        inv = LiveInventory(max_tags=16)
        for i in range(200):
            inv.observe(i, 0, float(i))
            assert inv.tracked <= 16
        assert inv.evicted_lru == 184
        assert inv.tracked_watermark == 16

    def test_evicts_least_recently_seen(self):
        inv = LiveInventory(max_tags=3)
        inv.observe(1, 0, 1.0)
        inv.observe(2, 0, 2.0)
        inv.observe(3, 0, 3.0)
        inv.observe(1, 0, 4.0)  # refresh tag 1: tag 2 is now stalest
        inv.observe(9, 0, 5.0)
        assert inv.record(2) is None
        assert inv.record(1) is not None

    def test_tie_breaks_to_smaller_tag_id(self):
        inv = LiveInventory(max_tags=2)
        inv.observe(5, 0, 1.0)
        inv.observe(3, 0, 1.0)  # same timestamp: 3 < 5 evicts first
        inv.observe(8, 0, 2.0)
        assert inv.record(3) is None
        assert inv.record(5) is not None

    def test_rows_recycled(self):
        inv = LiveInventory(max_tags=4)
        for i in range(100):
            inv.observe(i, 0, float(i))
        # 100 tags through a 4-row cap: the SoA backing stays small.
        assert len(inv) <= 8


class TestHeapBound:
    def test_repeat_reads_keep_heap_bounded(self):
        # No TTL, working set below the cap: no eviction path ever
        # runs, so only compaction keeps the lazy heap O(active tags).
        inv = LiveInventory(max_tags=1000)
        for i in range(20_000):
            inv.observe(i % 100, 0, i * 1e-3)
        assert inv.tracked == 100
        assert len(inv._lru_heap) <= 2 * inv.tracked + 16

    def test_eviction_order_survives_compaction(self):
        inv = LiveInventory(max_tags=3)
        # Enough repeat reads to trigger many compactions.
        for i in range(2_000):
            inv.observe(i % 3 + 1, 0, float(i))
        # Last seen: tag 3 @ 1997, tag 1 @ 1998, tag 2 @ 1999.
        inv.observe(9, 0, 3000.0)
        assert inv.record(3) is None  # stalest evicted
        assert inv.record(1) is not None
        assert inv.record(2) is not None


class TestTtlEviction:
    def test_idle_tags_expire(self):
        inv = LiveInventory(max_tags=100, ttl_s=5.0)
        inv.observe(1, 0, 0.0)
        inv.observe(2, 0, 3.0)
        evicted = inv.expire(6.0)
        assert evicted == 1
        assert inv.record(1) is None
        assert inv.record(2) is not None
        assert inv.evicted_ttl == 1

    def test_no_ttl_means_no_expiry(self):
        inv = LiveInventory(max_tags=100)
        inv.observe(1, 0, 0.0)
        assert inv.expire(1e9) == 0

    def test_refresh_defeats_expiry(self):
        inv = LiveInventory(max_tags=100, ttl_s=5.0)
        inv.observe(1, 0, 0.0)
        inv.observe(1, 0, 4.0)
        assert inv.expire(6.0) == 0
        assert inv.record(1) is not None


class TestDeterminism:
    @staticmethod
    def _stream(inv: LiveInventory) -> None:
        for i in range(500):
            inv.observe(i % 37, i % 3, i * 0.01, bits=64, slot=i)
            if i % 100 == 99:
                inv.expire(i * 0.01)

    def test_state_pickle_byte_identical(self):
        a = LiveInventory(max_tags=20, ttl_s=1.0)
        b = LiveInventory(max_tags=20, ttl_s=1.0)
        self._stream(a)
        self._stream(b)
        assert a.state_pickle() == b.state_pickle()
        assert a.state_sha256() == b.state_sha256()

    def test_state_sorted_by_tag_id(self):
        inv = LiveInventory(max_tags=50)
        for tag in (9, 2, 30, 1):
            inv.observe(tag, 0, 1.0)
        tags = [row[0] for row in inv.state_dict()["tags"]]
        assert tags == sorted(tags)


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        inv = LiveInventory(max_tags=8, ttl_s=2.0)
        for i in range(30):
            inv.observe(i, i % 2, float(i))
        path = inv.save_checkpoint(tmp_path / "inv.ckpt")
        state = LiveInventory.load_checkpoint(path)
        assert state == inv.state_dict()
        assert state["schema"] == SERVE_STATE_SCHEMA

    def test_corruption_detected(self, tmp_path):
        inv = LiveInventory(max_tags=8)
        inv.observe(1, 0, 1.0)
        path = inv.save_checkpoint(tmp_path / "inv.ckpt")
        wrapper = pickle.loads(path.read_bytes())
        wrapper["state"] = wrapper["state"][:-4] + b"\x00\x00\x00\x00"
        path.write_bytes(pickle.dumps(wrapper))
        with pytest.raises(ValueError, match="integrity"):
            LiveInventory.load_checkpoint(path)

    def test_schema_skew_detected(self, tmp_path):
        inv = LiveInventory(max_tags=8)
        path = inv.save_checkpoint(tmp_path / "inv.ckpt")
        wrapper = pickle.loads(path.read_bytes())
        wrapper["schema"] = 999
        path.write_bytes(pickle.dumps(wrapper))
        with pytest.raises(ValueError, match="schema"):
            LiveInventory.load_checkpoint(path)

    def test_no_tmp_file_left(self, tmp_path):
        inv = LiveInventory(max_tags=8)
        inv.save_checkpoint(tmp_path / "inv.ckpt")
        assert [p.name for p in tmp_path.iterdir()] == ["inv.ckpt"]


class TestValidation:
    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            LiveInventory(max_tags=0)
        with pytest.raises(ValueError):
            LiveInventory(max_tags=1, ttl_s=0.0)
        with pytest.raises(ValueError):
            LiveInventory(max_tags=1, ewma_alpha=0.0)
