"""Tests for repro.em.polarization."""

import math

import pytest

from repro.em.polarization import (
    max_roll_for_loss_db,
    polarization_loss,
    polarization_loss_db,
    roundtrip_polarization_loss_db,
)


class TestOneWayLoss:
    def test_aligned_is_lossless(self):
        assert polarization_loss(0.0) == pytest.approx(1.0)
        assert polarization_loss_db(0.0) == pytest.approx(0.0)

    def test_45_degrees_is_3db(self):
        assert polarization_loss_db(math.radians(45.0)) == pytest.approx(3.01, abs=0.01)

    def test_cross_pol_floored_at_30db(self):
        assert polarization_loss_db(math.radians(90.0)) == pytest.approx(30.0)

    def test_monotone_to_90(self):
        losses = [polarization_loss_db(math.radians(a)) for a in (0, 20, 40, 60, 80)]
        assert losses == sorted(losses)


class TestRoundTrip:
    def test_double_the_one_way(self):
        angle = math.radians(30.0)
        assert roundtrip_polarization_loss_db(angle) == pytest.approx(
            2 * polarization_loss_db(angle)
        )

    def test_45_degrees_costs_6db_roundtrip(self):
        assert roundtrip_polarization_loss_db(math.radians(45.0)) == pytest.approx(
            6.02, abs=0.02
        )


class TestMountingBudget:
    def test_inverse_of_roundtrip_loss(self):
        budget = 3.0
        roll = max_roll_for_loss_db(budget)
        assert roundtrip_polarization_loss_db(roll) == pytest.approx(budget, abs=0.01)

    def test_zero_budget_zero_roll(self):
        assert max_roll_for_loss_db(0.0) == pytest.approx(0.0)

    def test_generous_budget_capped_by_floor(self):
        roll = max_roll_for_loss_db(100.0)
        assert roll <= math.radians(90.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            max_roll_for_loss_db(-1.0)

    def test_practical_mounting_answer(self):
        # a 1 dB round-trip budget allows ~19 degrees of roll
        roll_deg = math.degrees(max_roll_for_loss_db(1.0))
        assert 17.0 < roll_deg < 22.0
