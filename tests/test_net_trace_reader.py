"""The streaming trace reader: dump/load symmetry for event traces.

Before :class:`~repro.net.engine.TraceReader`, ``EventTrace`` dumps
were write-only artifacts.  This file pins the closed loop: every line
``iter_jsonl`` writes carries a per-line sha256, the reader verifies
each line against its hash, corrupted/torn lines are *skipped and
counted* (mirroring :class:`~repro.sim.checkpoint.SweepCheckpoint`'s
torn-tail tolerance), and the surviving events reconstruct exactly —
time, seq, proc, kind, and detail, in order.
"""

from __future__ import annotations

import json

import pytest

from repro.net.engine import (
    EventTrace,
    TraceEvent,
    TraceReader,
    TraceReadError,
)


def _make_trace(n: int = 6) -> EventTrace:
    trace = EventTrace(capacity=64)
    for i in range(n):
        trace.append(
            TraceEvent(
                time_s=0.1 * i, seq=i, process="mac", kind="read",
                detail=(("tag", i), ("slot", i * 2)),
            )
        )
    return trace


def _dump(trace: EventTrace, path) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for line in trace.iter_jsonl():
            handle.write(line)


class TestRoundTrip:
    def test_events_reconstruct_exactly(self, tmp_path):
        trace = _make_trace()
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        reader = TraceReader(path)
        events = list(reader)
        assert events == trace.tail()
        assert reader.events_read == 6
        assert reader.skipped_lines == 0
        assert reader.unverified_lines == 0

    def test_header_parsed(self, tmp_path):
        trace = _make_trace(3)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        reader = TraceReader(path)
        list(reader)
        assert reader.header is not None
        assert reader.header.total_events == 3
        assert reader.header.digest_sha256 == trace.digest()

    def test_dump_lines_carry_sha256(self, tmp_path):
        trace = _make_trace(2)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        for line in path.read_text().splitlines()[1:]:
            assert "sha256" in json.loads(line)

    def test_detail_order_preserved(self, tmp_path):
        trace = EventTrace(capacity=8)
        trace.append(
            TraceEvent(
                time_s=1.0, seq=0, process="p", kind="k",
                detail=(("z", 1), ("a", 2), ("m", 3)),
            )
        )
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        (event,) = list(TraceReader(path))
        assert event.detail == (("z", 1), ("a", 2), ("m", 3))


class TestCorruption:
    def test_corrupt_line_skipped_and_counted(self, tmp_path):
        trace = _make_trace(5)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        lines = path.read_text().splitlines()
        lines[3] = lines[3].replace('"tag":2', '"tag":999')
        path.write_text("\n".join(lines) + "\n")
        bad = []
        reader = TraceReader(
            path, on_bad_line=lambda no, raw, why: bad.append((no, why))
        )
        events = list(reader)
        assert len(events) == 4
        assert reader.skipped_lines == 1
        assert bad and "sha256 mismatch" in bad[0][1]

    def test_torn_tail_tolerated(self, tmp_path):
        trace = _make_trace(4)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # tear the final line
        reader = TraceReader(path)
        events = list(reader)
        assert len(events) == 3
        assert reader.skipped_lines == 1

    def test_unparseable_json_skipped(self, tmp_path):
        trace = _make_trace(3)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        with path.open("a") as handle:
            handle.write("{nonsense\n")
        reader = TraceReader(path)
        assert len(list(reader)) == 3
        assert reader.skipped_lines == 1

    def test_legacy_line_without_sha_counts_unverified(self, tmp_path):
        trace = _make_trace(2)
        path = tmp_path / "trace.jsonl"
        _dump(trace, path)
        legacy = TraceEvent(
            time_s=9.0, seq=99, process="mac", kind="read",
            detail=(("tag", 7),),
        )
        with path.open("a") as handle:
            handle.write(legacy.to_line() + "\n")
        reader = TraceReader(path)
        events = list(reader)
        assert len(events) == 3
        assert events[-1] == legacy
        assert reader.unverified_lines == 1
        assert reader.skipped_lines == 0


class TestHeaderErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceReadError):
            list(TraceReader(tmp_path / "absent.jsonl"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceReadError, match="no header"):
            list(TraceReader(path))

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text('{"trace":"other.format"}\n')
        with pytest.raises(TraceReadError, match="not a repro.net"):
            list(TraceReader(path))

    def test_unparseable_header_raises(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TraceReadError, match="unparseable header"):
            list(TraceReader(path))


class TestDigestUnchanged:
    def test_dump_format_does_not_perturb_digest(self):
        # The running digest hashes to_line() (no per-line sha); adding
        # sha256 to *dumped* lines must not change any digest.
        t1 = _make_trace(5)
        t2 = _make_trace(5)
        assert t1.digest() == t2.digest()
        event = t1.tail()[0]
        assert "sha256" not in json.loads(event.to_line())
        assert "sha256" in json.loads(event.to_dump_line())
