"""Metro-scale multi-AP deployments: geometry, handoff, relay, determinism.

Covers :mod:`repro.net.deployment` — the AP-grid substrate
(:class:`Deployment`), the extended population, the three epoch
processes (mobility / association / relay) and the reuse-coloured MAC —
plus the executor-composition and schema-versioning guarantees of
:class:`~repro.net.task.MultiAPTask`.

The headline claims mirror the single-AP suite and add the two
deployment-specific ones: same (config, seed) ⇒ byte-identical report
and event-trace digest *including runs with handoffs and relays*, and
the physical claims (relaying extends read coverage past the cell edge;
handoff re-balances AP load under mobility).
"""

import math
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.net import (
    MULTI_AP_REPORT_SCHEMA,
    Deployment,
    MetroTagPopulation,
    MultiAPConfig,
    MultiAPTask,
    run_multi_ap,
)
from repro.sim.cache import ResultCache
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.executor import SweepExecutor
from repro.sim.faults import FaultPlan
from repro.sim.retry import RetryPolicy

_SEED = 11

#: Small deployment that still exercises every layer: 3x3 grid, tight
#: pitch (everyone in coverage), a mobile minority, light blockage.
_FAST = dict(num_tags=40, num_slots=400, epoch_slots=50, ap_spacing_m=6.0)


def _config(**overrides) -> MultiAPConfig:
    merged = {**_FAST, **overrides}
    return MultiAPConfig(**merged)


class TestMultiAPConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_rows": 0},
            {"grid_cols": 0},
            {"ap_spacing_m": 0.0},
            {"spatial_reuse_factor": 0},
            {"num_tags": -1},
            {"num_slots": 0},
            {"frame_bits": 0},
            {"hotspot_fraction": 1.5},
            {"mobile_fraction": -0.1},
            {"hotspot_sigma_m": 0.0},
            {"speed_min_m_s": 0.0},
            {"speed_min_m_s": 2.0, "speed_max_m_s": 1.0},
            {"pause_max_s": -1.0},
            {"time_warp": 0.0},
            {"epoch_slots": 0},
            {"handoff_hysteresis_db": -1.0},
            {"handoff_delay_slots": -1},
            {"relay_range_m": 0.0},
            {"relay_max_hops": 0},
            {"relay_hop_success": 0.0},
            {"relay_hop_success": 1.5},
            {"blockage_rate_hz": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MultiAPConfig(**kwargs)

    def test_field_names_cover_every_field(self):
        names = MultiAPConfig.field_names()
        assert {"num_tags", "ap_spacing_m", "handoff_hysteresis_db"} <= names

    def test_config_is_hashable_and_picklable(self):
        config = _config()
        assert pickle.loads(pickle.dumps(config)) == config
        hash(config)


class TestDeploymentGeometry:
    def test_grid_positions_are_cell_centres(self):
        d = Deployment(MultiAPConfig(grid_rows=2, grid_cols=3, ap_spacing_m=4.0))
        assert d.n_aps == 6
        # AP id = row * cols + col; AP (r, c) at ((c+.5)p, (r+.5)p)
        np.testing.assert_allclose(d.ap_xy[0], [2.0, 2.0])
        np.testing.assert_allclose(d.ap_xy[2], [10.0, 2.0])
        np.testing.assert_allclose(d.ap_xy[3], [2.0, 6.0])
        assert d.area_m == (12.0, 8.0)

    def test_reuse_colors_partition_the_grid(self):
        d = Deployment(MultiAPConfig(grid_rows=3, grid_cols=3,
                                     spatial_reuse_factor=3))
        together = np.sort(np.concatenate(d.aps_of_color))
        np.testing.assert_array_equal(together, np.arange(9))
        # diagonal neighbours share a colour, row/col neighbours don't
        assert d.reuse_color[0] == d.reuse_color[5] == d.reuse_color[7]
        assert d.reuse_color[0] != d.reuse_color[1]

    def test_reuse_factor_one_means_everyone_every_slot(self):
        d = Deployment(MultiAPConfig(spatial_reuse_factor=1))
        assert len(d.aps_of_color) == 1
        assert d.aps_of_color[0].size == d.n_aps

    def test_cell_radius_inverts_the_range_law(self):
        d = Deployment(_config())
        snr_at_edge = float(
            d.link_model.snr_db(np.array([d.cell_radius_m]))[0]
        )
        assert snr_at_edge == pytest.approx(d.coverage_snr_db, abs=1e-9)

    def test_coverage_margin_shrinks_the_cell(self):
        base = Deployment(_config())
        tight = Deployment(_config(coverage_margin_db=6.0))
        assert tight.cell_radius_m < base.cell_radius_m

    def test_snr_matrix_agrees_with_scalar_probe(self):
        d = Deployment(_config())
        xs = np.array([1.0, 7.3, 15.2])
        ys = np.array([2.0, 9.9, 4.4])
        matrix = d.snr_matrix(xs, ys)
        assert matrix.shape == (3, d.n_aps)
        for k in range(3):
            for ap in range(d.n_aps):
                scalar = d.snr_to_ap(float(xs[k]), float(ys[k]), ap)
                assert matrix[k, ap] == pytest.approx(scalar, abs=1e-9)


class TestInterference:
    def test_single_ap_has_no_noise_rise(self):
        d = Deployment(MultiAPConfig(grid_rows=1, grid_cols=1))
        np.testing.assert_array_equal(d.noise_rise_db, [0.0])

    def test_multi_ap_rise_is_positive(self):
        d = Deployment(_config())
        assert np.all(d.noise_rise_db > 0.0)

    def test_rise_decreases_with_spacing(self):
        rises = [
            Deployment(_config(ap_spacing_m=sp)).noise_rise_db.max()
            for sp in (4.0, 8.0, 16.0)
        ]
        assert rises[0] > rises[1] > rises[2]

    def test_aggressive_reuse_pays_more_interference(self):
        loose = Deployment(_config(spatial_reuse_factor=3))
        aggressive = Deployment(_config(spatial_reuse_factor=1))
        assert aggressive.noise_rise_db.max() > loose.noise_rise_db.max()

    def test_rise_is_folded_into_the_snr(self):
        d = Deployment(_config())
        raw = d.link_model.snr_db(np.array([3.0]))[0]
        x, y = d.ap_xy[0, 0] + 3.0, d.ap_xy[0, 1]
        assert d.snr_to_ap(float(x), float(y), 0) == pytest.approx(
            raw - d.noise_rise_db[0], abs=1e-9
        )


class TestMetroTagPopulation:
    def test_add_at_places_and_flags(self):
        pop = MetroTagPopulation()
        ids = pop.add_at(
            np.array([1.0, 2.0]), np.array([3.0, 4.0]),
            np.array([True, False]), 0.0,
        )
        np.testing.assert_array_equal(pop.x_m[ids], [1.0, 2.0])
        np.testing.assert_array_equal(pop.y_m[ids], [3.0, 4.0])
        np.testing.assert_array_equal(pop.mobile[ids], [True, False])
        np.testing.assert_array_equal(pop.serving_ap[ids], [-1, -1])
        np.testing.assert_array_equal(pop.relay_hops[ids], [-1, -1])

    def test_growth_preserves_metro_arrays(self):
        pop = MetroTagPopulation()
        pop.add_at(np.array([5.0]), np.array([6.0]), np.array([True]), 0.0)
        pop.serving_ap[0] = 3
        pop.eff_clear_p[0] = 0.77
        n = 5000  # force several capacity doublings past 1024
        pop.add_at(np.zeros(n), np.zeros(n), np.zeros(n, dtype=bool), 1.0)
        assert pop.x_m[0] == 5.0
        assert pop.serving_ap[0] == 3
        assert pop.eff_clear_p[0] == 0.77
        # grown tails carry the documented fills
        assert pop.serving_ap[4000] == -1
        assert math.isnan(pop.read_distance_m[4000])

    def test_success_p_reads_effective_probabilities(self):
        pop = MetroTagPopulation()
        ids = pop.add_at(np.zeros(2), np.zeros(2), np.zeros(2, dtype=bool), 0.0)
        pop.eff_clear_p[ids] = [0.9, 0.8]
        pop.eff_blocked_p[ids] = [0.1, 0.2]
        np.testing.assert_allclose(pop.success_p(ids, blocked=False), [0.9, 0.8])
        np.testing.assert_allclose(pop.success_p(ids, blocked=True), [0.1, 0.2])


class TestDeterminism:
    def test_static_run_is_byte_identical(self):
        config = _config()
        first = run_multi_ap(config, seed=_SEED)
        second = run_multi_ap(config, seed=_SEED)
        assert first.trace_digest == second.trace_digest
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_full_feature_run_is_byte_identical(self):
        # handoffs, relays, mobility, hotspot and blockage all at once —
        # the acceptance-criteria configuration
        config = _config(
            num_slots=800,
            mobile_fraction=0.5,
            hotspot_fraction=0.4,
            time_warp=2000.0,
            blockage_rate_hz=20.0,
            relay_range_m=5.0,
            persistent=True,
        )
        first = run_multi_ap(config, seed=_SEED)
        second = run_multi_ap(config, seed=_SEED)
        assert first.trace_digest == second.trace_digest
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_different_seeds_diverge(self):
        config = _config()
        assert (
            run_multi_ap(config, seed=1).trace_digest
            != run_multi_ap(config, seed=2).trace_digest
        )

    def test_trace_dump_carries_the_digest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        report = run_multi_ap(_config(), seed=_SEED, trace_path=path)
        assert report.trace_digest in path.read_text().splitlines()[0]

    def test_zero_tags_runs_clean(self):
        report = run_multi_ap(_config(num_tags=0), seed=_SEED)
        assert report.tags_total == 0
        assert report.tags_read == 0
        assert report.frames_delivered == 0


class TestRelay:
    #: Sparse deployment: cells don't overlap, tags between cells are
    #: out of direct coverage and must relay through neighbours.
    _SPARSE = dict(
        num_tags=200,
        num_slots=2500,
        ap_spacing_m=40.0,
        relay_range_m=6.0,
        relay_max_hops=4,
    )

    def test_relay_extends_coverage_past_the_cell_edge(self):
        on = run_multi_ap(MultiAPConfig(**self._SPARSE), seed=3)
        off = run_multi_ap(
            MultiAPConfig(**self._SPARSE, relay_enabled=False), seed=3
        )
        assert on.tags_read > off.tags_read
        assert on.tags_read_relayed > 0
        assert off.tags_read_relayed == 0
        assert on.coverage_relay > 0.0
        assert off.coverage_relay == 0.0
        # a relayed read lands beyond anything direct reads reach
        assert on.max_read_range_m > off.max_read_range_m
        assert on.max_read_range_m > on.cell_radius_m

    def test_relay_leaves_fully_covered_deployments_alone(self):
        # tight grid: everyone is in direct coverage, so relaying must
        # neither route anyone nor change a single byte
        config = _config()
        report = run_multi_ap(config, seed=_SEED)
        assert report.coverage_direct == 1.0
        assert report.coverage_relay == 0.0
        assert report.tags_read_relayed == 0
        off = run_multi_ap(replace(config, relay_enabled=False), seed=_SEED)
        assert report.trace_digest == off.trace_digest

    def test_unreachable_tags_are_counted_not_dropped(self):
        # one AP, tags sprayed over a huge block, tiny relay range:
        # somebody is out of everything
        config = MultiAPConfig(
            grid_rows=1,
            grid_cols=1,
            ap_spacing_m=60.0,
            num_tags=50,
            num_slots=500,
            relay_range_m=1.0,
        )
        report = run_multi_ap(config, seed=5)
        assert report.unreachable > 0
        assert report.tags_total == 50


class TestHandoff:
    #: Mobile cohort born in AP 0's corner, walking the block under a
    #: time warp; persistent mode so per-AP reads measure load.
    _MOBILE = dict(
        num_tags=150,
        num_slots=1500,
        ap_spacing_m=10.0,
        epoch_slots=50,
        mobile_fraction=1.0,
        hotspot_fraction=1.0,
        time_warp=2000.0,
        persistent=True,
        relay_enabled=False,
    )

    def test_handoff_rebalances_ap_load(self):
        on = run_multi_ap(MultiAPConfig(**self._MOBILE), seed=5)
        off = run_multi_ap(
            MultiAPConfig(**self._MOBILE, handoff_enabled=False), seed=5
        )
        assert on.handoffs > 0
        assert off.handoffs == 0
        assert on.ap_load_jain > off.ap_load_jain

    def test_handoff_latency_is_recorded_and_positive(self):
        report = run_multi_ap(MultiAPConfig(**self._MOBILE), seed=5)
        assert report.handoffs > 0
        assert math.isfinite(report.handoff_latency_mean_s)
        assert report.handoff_latency_mean_s >= 0.0
        assert (
            report.handoff_latency_p95_s >= report.handoff_latency_p50_s >= 0.0
        )

    def test_mobility_reports_physical_doppler(self):
        report = run_multi_ap(MultiAPConfig(**self._MOBILE), seed=5)
        # pedestrian speeds ≤ 1.5 m/s at 24 GHz: 2v/λ ≤ ~242 Hz; the
        # waypoint interpolation can't exceed the top speed
        assert 0.0 < report.max_doppler_hz < 300.0

    def test_static_tags_never_hand_off(self):
        config = _config(mobile_fraction=0.0)
        report = run_multi_ap(config, seed=_SEED)
        assert report.handoffs == 0
        assert math.isnan(report.handoff_latency_mean_s)


class TestMultiAPTaskBasics:
    def test_rejects_unknown_param(self):
        with pytest.raises(ValueError, match="not a MultiAPConfig field"):
            MultiAPTask(config=_config(), param="nope")

    def test_int_params_cast_from_float_sweep_values(self):
        task = MultiAPTask(config=_config())
        assert task.config_for(25.0).num_tags == 25
        assert isinstance(task.config_for(25.0).num_tags, int)

    def test_float_params_stay_float(self):
        task = MultiAPTask(config=_config(), param="ap_spacing_m")
        assert task.config_for(7.5).ap_spacing_m == 7.5

    def test_task_is_picklable(self):
        task = MultiAPTask(config=_config())
        assert pickle.loads(pickle.dumps(task)) == task


def _point_pickles(report) -> list[bytes]:
    """Per-point pickles (see tests/test_net_task.py for the rationale:
    list-level pickles differ through memoised back-references)."""
    return [pickle.dumps(point) for point in report.points]


_VALUES = [10.0, 25.0, 40.0]


class TestExecutorComposition:
    def _task(self, **overrides) -> MultiAPTask:
        return MultiAPTask(config=_config(num_slots=250, **overrides))

    def test_serial_equals_process_backend(self):
        task = self._task()
        serial = SweepExecutor("serial").run(_VALUES, task, seed=_SEED)
        pooled = SweepExecutor("process", max_workers=2).run(
            _VALUES, task, seed=_SEED
        )
        assert _point_pickles(serial) == _point_pickles(pooled)
        for a, b in zip(serial.points, pooled.points):
            assert a.metric.trace_digest == b.metric.trace_digest

    def test_cache_replay_is_byte_identical(self, tmp_path):
        task = self._task()
        cache = ResultCache(tmp_path / "cache")
        cold = SweepExecutor("serial", cache=cache).run(
            _VALUES, task, seed=_SEED
        )
        warm = SweepExecutor("serial", cache=cache).run(
            _VALUES, task, seed=_SEED
        )
        assert warm.cache_hits == len(_VALUES)
        assert _point_pickles(cold) == _point_pickles(warm)

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        task = self._task()
        straight = SweepExecutor("serial").run(_VALUES, task, seed=_SEED)
        path = tmp_path / "sweep.ckpt"
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor("serial", on_progress=killer).run(
                _VALUES, task, seed=_SEED, checkpoint=path
            )
        resumed = SweepExecutor("serial").run(
            _VALUES, task, seed=_SEED, checkpoint=path, resume=True
        )
        assert resumed.resumed == 1
        assert _point_pickles(resumed) == _point_pickles(straight)

    def test_injected_faults_recover_bit_exactly(self):
        task = self._task()
        executor = SweepExecutor(
            "serial", retry=RetryPolicy(max_retries=2, backoff_base_s=1e-4)
        )
        baseline = executor.run(_VALUES, task, seed=_SEED)
        plan = FaultPlan.random(
            len(_VALUES), seed=99, raise_rate=0.8, max_faulty_attempts=2
        )
        chaotic = executor.run(_VALUES, task, seed=_SEED, faults=plan)
        assert chaotic.failed == 0
        assert chaotic.retried >= 1
        assert _point_pickles(chaotic) == _point_pickles(baseline)

    def test_adaptive_schedule_rejected_clearly(self):
        executor = SweepExecutor("serial", schedule="adaptive")
        with pytest.raises(ValueError, match="make_accumulator"):
            executor.run(_VALUES, self._task(), seed=_SEED)


class TestReportSchema:
    """Satellite: report round-trips must fail loudly on version skew."""

    def test_fresh_report_carries_the_schema_version(self):
        report = run_multi_ap(_config(num_slots=100), seed=_SEED)
        assert report.schema_version == MULTI_AP_REPORT_SCHEMA

    def test_stale_cache_entry_fails_loudly(self, tmp_path):
        task = MultiAPTask(config=_config(num_slots=100))
        value = 10.0
        cache = ResultCache(tmp_path / "cache")
        # poison the exact key the executor will look up with a report
        # from "the future" (or a mispickled past)
        forged = replace(
            task.run(value, np.random.SeedSequence(0)), schema_version=99
        )
        key = cache.key_for(seed=_SEED, index=0, **task.cache_parts(value))
        cache.put(key, forged)
        executor = SweepExecutor("serial", cache=cache)
        with pytest.raises(ValueError, match="schema_version 99"):
            executor.run([value], task, seed=_SEED)

    def test_stale_checkpoint_fails_loudly(self, tmp_path):
        import json

        task = MultiAPTask(config=_config(num_slots=100))
        path = tmp_path / "sweep.ckpt"
        SweepExecutor("serial").run([10.0], task, seed=_SEED, checkpoint=path)
        # rewrite the completed point with a version-skewed metric,
        # keeping the header (seed/fingerprint) intact
        header = json.loads(path.read_text().splitlines()[0])
        forged = replace(
            task.run(10.0, np.random.SeedSequence(0)), schema_version=99
        )
        ckpt = SweepCheckpoint(path)
        ckpt.start(
            seed=header["seed"],
            fingerprint=header["fingerprint"],
            n_points=header["n_points"],
        )
        ckpt.append(
            index=0, value=10.0, status="ok", attempts=1, seconds=0.1,
            metric=forged,
        )
        with pytest.raises(ValueError, match="schema_version 99"):
            SweepExecutor("serial").run(
                [10.0], task, seed=_SEED, checkpoint=path, resume=True
            )
