"""Tests for repro.core.sdm — spatial reuse."""

import math

import pytest

from repro.core.sdm import SdmCell, SdmLink
from repro.em.antenna import patch_element
from repro.em.array import UniformLinearArray


def _pair(separation_deg: float, elements: int = 32, distance: float = 4.0):
    array = UniformLinearArray(num_elements=elements, element=patch_element(5.0))
    return [
        SdmLink(
            name="left",
            tag_bearing_deg=-separation_deg / 2,
            tag_distance_m=distance,
            ap_array=array,
        ),
        SdmLink(
            name="right",
            tag_bearing_deg=separation_deg / 2,
            tag_distance_m=distance,
            ap_array=array,
        ),
    ]


class TestSdmLink:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SdmLink(name="x", tag_bearing_deg=0.0, tag_distance_m=0.0)
        with pytest.raises(ValueError):
            SdmLink(name="x", tag_bearing_deg=95.0, tag_distance_m=2.0)

    def test_gain_peaks_at_own_tag(self):
        link = SdmLink(name="x", tag_bearing_deg=20.0, tag_distance_m=3.0)
        at_tag = link.ap_gain_toward(20.0)
        away = link.ap_gain_toward(-20.0)
        assert at_tag > 100 * away


class TestSdmCell:
    def test_rejects_duplicate_names(self):
        links = _pair(30.0)
        links[1] = SdmLink(
            name="left", tag_bearing_deg=15.0, tag_distance_m=4.0,
            ap_array=links[1].ap_array,
        )
        with pytest.raises(ValueError):
            SdmCell(links)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SdmCell([])

    def test_single_link_sinr_equals_snr(self):
        cell = SdmCell(_pair(40.0)[:1])
        report = cell.evaluate()
        assert report.sinr_db["left"] == pytest.approx(report.snr_db["left"])

    def test_well_separated_links_barely_degrade(self):
        cell = SdmCell(_pair(60.0))
        report = cell.evaluate()
        for name in ("left", "right"):
            assert report.degradation_db(name) < 1.0
            assert report.sinr_db[name] > 15.0

    def test_nearly_collinear_links_interfere(self):
        wide = SdmCell(_pair(60.0)).evaluate()
        tight = SdmCell(_pair(3.0)).evaluate()
        assert tight.degradation_db("left") > wide.degradation_db("left") + 3.0

    def test_degradation_non_negative(self):
        for separation in (5.0, 15.0, 45.0):
            report = SdmCell(_pair(separation)).evaluate()
            assert report.degradation_db("left") >= -1e-9

    def test_larger_array_allows_tighter_packing(self):
        small = SdmCell(_pair(0.0, elements=8)[:1])  # placeholder for API
        del small
        sep_small = SdmCell(_pair(10.0, elements=16)).minimum_separation_deg(10.0)
        sep_large = SdmCell(_pair(10.0, elements=64)).minimum_separation_deg(10.0)
        assert sep_large < sep_small

    def test_minimum_separation_requires_two_links(self):
        cell = SdmCell(_pair(30.0)[:1])
        with pytest.raises(ValueError):
            cell.minimum_separation_deg()

    def test_minimum_separation_is_sufficient(self):
        cell = SdmCell(_pair(30.0))
        separation = cell.minimum_separation_deg(10.0)
        report = SdmCell(_pair(separation * 1.05)).evaluate()
        assert report.all_above(10.0)

    def test_all_above_threshold_helper(self):
        report = SdmCell(_pair(60.0)).evaluate()
        assert report.all_above(0.0)
        assert not report.all_above(200.0)


class TestPhysicalScaling:
    def test_snr_falls_with_distance(self):
        near = SdmCell(_pair(40.0, distance=2.0)).evaluate()
        far = SdmCell(_pair(40.0, distance=8.0)).evaluate()
        drop = near.snr_db["left"] - far.snr_db["left"]
        assert drop == pytest.approx(40.0 * math.log10(4.0), abs=0.5)
