"""Tests for repro.rf.quantize."""

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.rf.quantize import ADC


class TestConstruction:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            ADC(bits=0)

    def test_rejects_non_positive_full_scale(self):
        with pytest.raises(ValueError):
            ADC(full_scale=0.0)

    def test_step_size(self):
        adc = ADC(bits=8, full_scale=1.0)
        assert adc.step == pytest.approx(2.0 / 256)


class TestQuantize:
    def test_values_on_grid(self):
        adc = ADC(bits=4, full_scale=1.0)
        sig = Signal(np.linspace(-0.9, 0.9, 50) + 0j, 1e6)
        out = adc.quantize(sig)
        levels = out.samples.real / adc.step
        assert np.allclose(levels, np.round(levels))

    def test_error_bounded_by_half_step(self, rng):
        adc = ADC(bits=10, full_scale=1.0)
        vals = rng.uniform(-0.99, 0.99, 1000) + 1j * rng.uniform(-0.99, 0.99, 1000)
        sig = Signal(vals, 1e6)
        out = adc.quantize(sig)
        error = np.abs(out.samples.real - sig.samples.real)
        assert np.max(error) <= adc.step / 2 + 1e-12

    def test_clipping_beyond_full_scale(self):
        adc = ADC(bits=8, full_scale=1.0)
        sig = Signal(np.array([10.0 + 10.0j]), 1e6)
        out = adc.quantize(sig)
        assert abs(out.samples[0].real) <= 1.0 + adc.step
        assert abs(out.samples[0].imag) <= 1.0 + adc.step

    def test_high_resolution_nearly_transparent(self, rng):
        adc = ADC(bits=16, full_scale=1.0)
        vals = 0.5 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        vals = np.clip(vals.real, -1, 1) + 1j * np.clip(vals.imag, -1, 1)
        sig = Signal(vals, 1e6)
        out = adc.quantize(sig)
        assert np.max(np.abs(out.samples - sig.samples)) < 1e-4

    def test_sqnr_formula(self):
        assert ADC(bits=12).ideal_sqnr_db() == pytest.approx(74.0, abs=0.1)


class TestQuantizationNoise:
    def test_measured_sqnr_near_ideal(self, rng):
        # full-scale complex tone through an 8-bit ADC
        adc = ADC(bits=8, full_scale=1.0)
        n = 100_000
        phase = rng.uniform(0, 2 * np.pi, n)
        sig = Signal(0.999 * np.exp(1j * phase), 1e6)
        out = adc.quantize(sig)
        noise = out.samples - sig.samples
        sqnr = 10 * np.log10(sig.power() / np.mean(np.abs(noise) ** 2))
        # complex rails together: expect within a few dB of 6.02*8+1.76
        assert sqnr == pytest.approx(adc.ideal_sqnr_db(), abs=4.0)


class TestHelpers:
    def test_clips_detection(self):
        adc = ADC(bits=8, full_scale=1.0)
        inside = Signal(np.array([0.5 + 0.5j]), 1e6)
        outside = Signal(np.array([1.5 + 0j]), 1e6)
        assert not adc.clips(inside)
        assert adc.clips(outside)

    def test_auto_ranged_fits_signal(self):
        adc = ADC(bits=12, full_scale=1.0)
        sig = Signal(np.array([3.0 + 4.0j]), 1e6)
        ranged = adc.auto_ranged(sig, headroom_db=6.0)
        assert not ranged.clips(sig)
        assert ranged.full_scale == pytest.approx(4.0 * 10 ** (6 / 20))

    def test_auto_ranged_on_silence_returns_self(self):
        adc = ADC(bits=12)
        assert adc.auto_ranged(Signal.zeros(8, 1e6)) is adc
