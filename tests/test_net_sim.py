"""Network-scale simulation: population, link model, MACs, determinism.

Covers the :mod:`repro.net` layers above the engine — the SoA
population, the budget-anchored link model, the three MAC modes, churn
and blockage — and the headline guarantee: same (config, seed) ⇒
byte-identical report and event-trace digest.
"""

import math
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.core.link import LinkConfig, link_snr_db
from repro.net import (
    LinkBudgetModel,
    NetSimConfig,
    Simulator,
    TagPopulation,
    jain_fairness,
    run_netsim,
)
from repro.net.mac import BlockageProcess
from repro.sim.faults import BlockageFrameOracle

_FAST = dict(num_tags=40, num_slots=300, min_distance_m=1.5, max_distance_m=3.0)


class TestJainFairness:
    def test_empty_is_zero(self):
        assert jain_fairness([]) == 0.0

    def test_all_zero_is_one(self):
        assert jain_fairness([0.0, 0.0, 0.0]) == 1.0

    def test_all_equal_is_one(self):
        assert jain_fairness([5.0] * 7) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestTagPopulation:
    def _deploy(self, pop, n, t=0.0):
        return pop.add(
            np.full(n, 2.0), np.zeros(n), np.full(n, 0.9), np.full(n, 0.1), t
        )

    def test_sequential_ids_across_batches(self):
        pop = TagPopulation()
        first = self._deploy(pop, 3)
        second = self._deploy(pop, 2, t=1.0)
        assert list(first) == [0, 1, 2]
        assert list(second) == [3, 4]
        assert len(pop) == 5

    def test_growth_preserves_state(self):
        pop = TagPopulation()
        self._deploy(pop, 10)
        pop.record_read(7, 128, 0.5)
        self._deploy(pop, 5000)  # forces several doublings
        assert pop.read[7]
        assert pop.delivered_bits[7] == 128
        assert pop.active_ids().size == 5010

    def test_depart_is_idempotent(self):
        pop = TagPopulation()
        self._deploy(pop, 2)
        assert pop.depart(0, 1.0)
        assert not pop.depart(0, 2.0)
        assert pop.departures == 1
        assert list(pop.active_ids()) == [1]

    def test_record_reads_vectorised_matches_scalar(self):
        a, b = TagPopulation(), TagPopulation()
        self._deploy(a, 6)
        self._deploy(b, 6)
        ids = np.array([1, 3, 4])
        a.record_reads(ids, 64, 2.0)
        for i in ids:
            b.record_read(int(i), 64, 2.0)
        np.testing.assert_array_equal(a.delivered_bits[:6], b.delivered_bits[:6])
        np.testing.assert_array_equal(a.read[:6], b.read[:6])
        np.testing.assert_array_equal(a.read_s[:6], b.read_s[:6])

    def test_latencies_only_for_read_tags(self):
        pop = TagPopulation()
        self._deploy(pop, 3, t=1.0)
        pop.record_read(1, 8, 4.0)
        np.testing.assert_allclose(pop.latencies_s(), [3.0])

    def test_expected_tags_preallocates_in_one_shot(self):
        pop = TagPopulation(expected_tags=5000)
        assert pop.distance_m.size >= 5000  # no doubling during deploy
        self._deploy(pop, 5000)
        assert len(pop) == 5000

    def test_expected_tags_is_a_floor_not_a_cap(self):
        pop = TagPopulation(expected_tags=8)
        self._deploy(pop, 500)  # growth past the hint still doubles
        assert pop.active_ids().size == 500

    def test_expected_tags_does_not_change_behaviour(self):
        hinted, unhinted = TagPopulation(expected_tags=64), TagPopulation()
        self._deploy(hinted, 50)
        self._deploy(unhinted, 50)
        hinted.record_read(9, 32, 1.5)
        unhinted.record_read(9, 32, 1.5)
        np.testing.assert_array_equal(
            hinted.active_ids(), unhinted.active_ids()
        )
        np.testing.assert_allclose(hinted.latencies_s(), unhinted.latencies_s())

    def test_rejects_negative_expected_tags(self):
        with pytest.raises(ValueError, match="expected_tags"):
            TagPopulation(expected_tags=-1)


class TestLinkBudgetModel:
    def _model(self, frame_bits=256):
        config = NetSimConfig()
        return LinkBudgetModel(
            config.tag, config.ap, config.environment, frame_bits
        )

    def test_range_law_matches_exact_budget(self):
        model = self._model()
        config = NetSimConfig()
        for d in (1.0, 2.5, 6.0, 12.0):
            exact = link_snr_db(
                LinkConfig(
                    distance_m=d,
                    tag=config.tag,
                    ap=config.ap,
                    environment=config.environment,
                )
            )
            analytic = float(model.snr_db(np.array([d]))[0])
            assert analytic == pytest.approx(exact, abs=1e-6), d

    def test_success_probability_monotone_in_distance(self):
        model = self._model()
        probs = model.frame_success_probability(np.array([2.0, 6.0, 18.0]))
        assert np.all((probs >= 0.0) & (probs <= 1.0))
        assert probs[0] >= probs[1] >= probs[2]

    def test_blockage_attenuation_hurts(self):
        model = self._model()
        d = np.array([4.0])
        clear = model.frame_success_probability(d)
        blocked = model.frame_success_probability(d, extra_attenuation_db=20.0)
        assert blocked[0] < clear[0]

    def test_rejects_bad_frame_bits(self):
        with pytest.raises(ValueError, match="frame_bits"):
            self._model(frame_bits=0)

    def test_spot_check_reports_operating_point(self):
        model = self._model(frame_bits=64)
        check = model.spot_check(
            slot=5, tag_id=2, distance_m=2.0, angle_deg=0.0,
            rng=np.random.default_rng(0),
        )
        assert check.slot == 5 and check.tag_id == 2
        assert 0.0 <= check.modeled_success_prob <= 1.0
        assert 0.0 <= check.measured_ber <= 0.5


class TestRunNetsim:
    @pytest.mark.parametrize("protocol", ["aloha", "inventory", "fdma"])
    def test_byte_identical_reports(self, protocol):
        config = NetSimConfig(protocol=protocol, spot_check_every=0, **_FAST)
        first = run_netsim(config, seed=5)
        second = run_netsim(config, seed=5)
        assert pickle.dumps(first) == pickle.dumps(second)
        assert first.trace_digest == second.trace_digest

    def test_different_seeds_diverge(self):
        config = NetSimConfig(**_FAST)
        assert (
            run_netsim(config, seed=1).trace_digest
            != run_netsim(config, seed=2).trace_digest
        )

    def test_discovery_drains_and_reads_everyone(self):
        report = run_netsim(NetSimConfig(**_FAST), seed=3)
        assert report.tags_read == report.tags_total == 40
        assert report.slots_run < report.config.num_slots  # drained early
        assert math.isfinite(report.time_to_full_inventory_s)
        assert report.jain_fairness == pytest.approx(1.0)

    def test_inventory_uses_q_rounds(self):
        config = NetSimConfig(protocol="inventory", q_initial=6.0, **_FAST)
        report = run_netsim(config, seed=3)
        assert report.rounds >= 1
        assert math.isfinite(report.q_final)
        assert report.tags_read > 0

    def test_fdma_group_goodput_scales(self):
        base = NetSimConfig(protocol="fdma", stop_when_drained=False, **_FAST)
        narrow = run_netsim(replace(base, fdma_group_size=2), seed=4)
        wide = run_netsim(replace(base, fdma_group_size=8), seed=4)
        assert wide.frames_delivered > narrow.frames_delivered

    def test_churn_records_arrivals_and_departures(self):
        config = NetSimConfig(
            arrival_rate_hz=50_000.0, mean_dwell_s=2e-3, **_FAST
        )
        report = run_netsim(config, seed=6)
        assert report.arrivals > 40  # initial cohort + Poisson stream
        assert report.departures > 0
        assert report.tags_total == report.arrivals

    def test_blockage_degrades_delivery(self):
        clear_cfg = NetSimConfig(
            persistent=True, stop_when_drained=False, **_FAST
        )
        blocked_cfg = replace(
            clear_cfg,
            blockage_rate_hz=400.0,
            blockage_mean_s=5e-3,
            blockage_attenuation_db=30.0,
            max_distance_m=6.0,
            min_distance_m=4.0,
        )
        clear = run_netsim(replace(clear_cfg, max_distance_m=6.0,
                                   min_distance_m=4.0), seed=7)
        blocked = run_netsim(blocked_cfg, seed=7)
        assert blocked.blocked_slots > 0
        assert (
            blocked.reads_failed_channel > clear.reads_failed_channel
            or blocked.frames_delivered < clear.frames_delivered
        )

    def test_spot_checks_recorded_and_deterministic(self):
        config = NetSimConfig(spot_check_every=100, **_FAST)
        first = run_netsim(config, seed=8)
        second = run_netsim(config, seed=8)
        assert len(first.spot_checks) >= 1
        assert first.spot_checks == second.spot_checks
        for check in first.spot_checks:
            assert 0.0 <= check.modeled_success_prob <= 1.0

    def test_spot_check_toggle_does_not_shift_other_streams(self):
        """All processes register unconditionally: instrumentation on/off
        must not change the MAC's reads (only add audit events)."""
        base = NetSimConfig(**_FAST)
        plain = run_netsim(base, seed=9)
        audited = run_netsim(replace(base, spot_check_every=150), seed=9)
        assert plain.frames_delivered == audited.frames_delivered
        assert plain.tags_read == audited.tags_read
        assert plain.time_to_full_inventory_s == pytest.approx(
            audited.time_to_full_inventory_s
        )

    def test_trace_dump(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        report = run_netsim(NetSimConfig(**_FAST), seed=1, trace_path=path)
        assert report.trace_digest in path.read_text().splitlines()[0]

    def test_zero_tags_is_legal(self):
        config = NetSimConfig(num_tags=0, num_slots=10)
        report = run_netsim(config, seed=0)
        assert report.tags_total == 0
        assert report.jain_fairness == 0.0
        assert math.isnan(report.time_to_full_inventory_s)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_tags=-1),
            dict(num_slots=0),
            dict(protocol="csma"),
            dict(frame_bits=0),
            dict(min_distance_m=5.0, max_distance_m=2.0),
            dict(transmit_probability=0.0),
            dict(transmit_probability=1.5),
            dict(fdma_group_size=0),
            dict(arrival_rate_hz=-1.0),
            dict(mean_dwell_s=0.0),
            dict(blockage_rate_hz=-2.0),
            dict(spot_check_every=-1),
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetSimConfig(**kwargs)


class TestBlockageProcess:
    def test_depth_counter_agrees_with_oracle(self):
        """The O(1) toggle counter is exactly the oracle's window set."""
        sim = Simulator(13)
        proc = sim.add_process(
            BlockageProcess(
                rate_hz=300.0, mean_duration_s=2e-3, slot_s=1e-4,
                horizon_s=0.5,
            )
        )
        proc.start()
        assert isinstance(proc.oracle, BlockageFrameOracle)
        assert proc.oracle.events, "plan should produce bursts at 300 Hz"
        samples = []

        def probe(t):
            samples.append((t, proc.is_blocked()))

        for k in range(500):
            t = k * 1e-3 + 5e-7  # offset: avoid edge-coincident queries
            sim.schedule_at(t, lambda t=t: probe(t), process="probe")
        sim.run()
        assert any(blocked for _, blocked in samples)
        for t, blocked in samples:
            assert blocked == proc.oracle.is_blocked_at(t), t
