"""Tests for repro.core.network."""

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.network import (
    FdmaPlan,
    InventoryResult,
    MmTagNetwork,
    NetworkTag,
    TdmaSchedule,
)
from repro.core.tag import TagConfig


def _make_network(num_tags=3, symbol_rate=2e6, sps=64, **net_kwargs):
    tags = [
        NetworkTag(
            config=TagConfig(
                tag_id=i, symbol_rate_hz=symbol_rate, samples_per_symbol=sps
            ),
            distance_m=2.0 + i,
            incidence_angle_deg=4.0 * i,
        )
        for i in range(num_tags)
    ]
    return MmTagNetwork(tags, environment=Environment.anechoic(), **net_kwargs)


class TestFdmaPlan:
    def test_spacing(self):
        plan = FdmaPlan(symbol_rate_hz=2e6, guard_factor=1.5)
        assert plan.spacing_hz == pytest.approx(6e6)

    def test_subcarriers_harmonic_safe(self):
        plan = FdmaPlan(symbol_rate_hz=2e6)
        for n in (1, 2, 4, 8):
            subs = plan.subcarriers(n)
            lowest, highest = subs[0], subs[-1]
            # third harmonic of the lowest must clear the occupied band
            assert 3 * lowest > highest + plan.symbol_rate_hz

    def test_subcarriers_distinct_and_spaced(self):
        subs = FdmaPlan(symbol_rate_hz=2e6).subcarriers(5)
        diffs = np.diff(subs)
        assert np.allclose(diffs, FdmaPlan(symbol_rate_hz=2e6).spacing_hz)

    def test_subcarrier_for_index_bounds(self):
        plan = FdmaPlan(symbol_rate_hz=2e6)
        with pytest.raises(ValueError):
            plan.subcarrier_for(-1)
        with pytest.raises(ValueError):
            plan.subcarrier_for(3, num_tags=2)

    def test_max_tags_monotone_in_sample_rate(self):
        plan = FdmaPlan(symbol_rate_hz=2e6)
        assert plan.max_tags(512e6) >= plan.max_tags(128e6) >= 0

    def test_guard_factor_validation(self):
        with pytest.raises(ValueError):
            FdmaPlan(symbol_rate_hz=2e6, guard_factor=0.5)

    def test_explicit_base(self):
        plan = FdmaPlan(symbol_rate_hz=2e6, base_subcarrier_hz=50e6)
        assert plan.subcarriers(1)[0] == pytest.approx(50e6)


class TestTdmaSchedule:
    def test_round_robin(self):
        schedule = TdmaSchedule(tag_ids=(5, 7, 9), slot_duration_s=1e-3)
        assert [schedule.owner_of_slot(i) for i in range(5)] == [5, 7, 9, 5, 7]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TdmaSchedule(tag_ids=(1, 1), slot_duration_s=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TdmaSchedule(tag_ids=(), slot_duration_s=1e-3)

    def test_rejects_negative_slot_index(self):
        schedule = TdmaSchedule(tag_ids=(1,), slot_duration_s=1e-3)
        with pytest.raises(ValueError):
            schedule.owner_of_slot(-1)


class TestNetworkConstruction:
    def test_rejects_duplicate_ids(self):
        tags = [
            NetworkTag(config=TagConfig(tag_id=1), distance_m=2.0),
            NetworkTag(config=TagConfig(tag_id=1), distance_m=3.0),
        ]
        with pytest.raises(ValueError):
            MmTagNetwork(tags)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MmTagNetwork([])

    def test_network_tag_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            NetworkTag(config=TagConfig(), distance_m=0.0)


class TestConcurrentUplink:
    def test_all_tags_decoded(self):
        net = _make_network(3)
        net.assign_subcarriers(FdmaPlan(symbol_rate_hz=2e6))
        results = net.simulate_concurrent_uplink(num_payload_bits=256, rng=0)
        assert len(results) == 3
        for tag_id, (res, ber) in results.items():
            assert res.success, f"tag {tag_id} failed"
            assert ber == 0.0

    def test_requires_subcarriers(self):
        net = _make_network(2)
        with pytest.raises(ValueError, match="subcarrier"):
            net.simulate_concurrent_uplink(rng=0)

    def test_requires_common_sample_rate(self):
        tags = [
            NetworkTag(
                config=TagConfig(tag_id=0, subcarrier_hz=12e6, samples_per_symbol=32),
                distance_m=2.0,
            ),
            NetworkTag(
                config=TagConfig(tag_id=1, subcarrier_hz=18e6, samples_per_symbol=64),
                distance_m=3.0,
            ),
        ]
        net = MmTagNetwork(tags)
        with pytest.raises(ValueError, match="sample rate"):
            net.simulate_concurrent_uplink(rng=0)

    def test_deterministic_given_seed(self):
        net1 = _make_network(2)
        net1.assign_subcarriers(FdmaPlan(symbol_rate_hz=2e6))
        net2 = _make_network(2)
        net2.assign_subcarriers(FdmaPlan(symbol_rate_hz=2e6))
        a = net1.simulate_concurrent_uplink(num_payload_bits=128, rng=7)
        b = net2.simulate_concurrent_uplink(num_payload_bits=128, rng=7)
        assert {k: v[1] for k, v in a.items()} == {k: v[1] for k, v in b.items()}


class TestTdmaInventory:
    def test_close_tags_deliver_everything(self):
        net = _make_network(3)
        result = net.tdma_inventory(num_rounds=20, rng=0)
        assert result.num_slots == 60
        for tag_id, delivered in result.delivered_bits.items():
            assert delivered == result.attempted_bits[tag_id]

    def test_fairness_one_for_equal_tags(self):
        tags = [
            NetworkTag(config=TagConfig(tag_id=i), distance_m=3.0) for i in range(4)
        ]
        net = MmTagNetwork(tags, environment=Environment.anechoic())
        result = net.tdma_inventory(num_rounds=10, rng=0)
        assert result.jain_fairness() == pytest.approx(1.0)

    def test_far_tag_delivers_less(self):
        tags = [
            NetworkTag(config=TagConfig(tag_id=0), distance_m=2.0),
            NetworkTag(config=TagConfig(tag_id=1), distance_m=40.0),
        ]
        net = MmTagNetwork(tags, environment=Environment.anechoic())
        result = net.tdma_inventory(num_rounds=30, rng=0)
        assert result.delivered_bits[1] < result.delivered_bits[0]

    def test_goodput_positive(self):
        net = _make_network(2)
        result = net.tdma_inventory(num_rounds=5, rng=0)
        assert result.aggregate_goodput_bps > 0

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            _make_network(1).tdma_inventory(num_rounds=0)


class TestAlohaDiscovery:
    def test_discovers_all_eventually(self):
        net = _make_network(5, sps=8)
        discovered, slots = net.slotted_aloha_discovery(500, rng=0)
        assert discovered == {0, 1, 2, 3, 4}
        assert slots < 500

    def test_deterministic(self):
        net = _make_network(4, sps=8)
        a = net.slotted_aloha_discovery(200, rng=3)
        b = net.slotted_aloha_discovery(200, rng=3)
        assert a == b

    def test_zero_probability_rejected(self):
        with pytest.raises(ValueError):
            _make_network(2, sps=8).slotted_aloha_discovery(10, transmit_probability=0.0)

    def test_always_transmit_two_tags_never_discovered(self):
        # p = 1 with >= 2 tags: every slot collides, nothing discovered.
        net = _make_network(2, sps=8)
        discovered, _ = net.slotted_aloha_discovery(50, rng=0, transmit_probability=1.0)
        assert discovered == set()

    def test_golden_fingerprint(self):
        """Pin the exact draw order: tags respond in ascending-id order.

        Discovery used to iterate a Python ``set`` while drawing RNG,
        leaving the per-slot draw order to hash-table internals.  The
        fix iterates ``sorted(undiscovered)``; this golden value is the
        witness — if the draw order ever drifts (set iteration, dict
        ordering, a refactor reordering the loop), this fails before
        any downstream experiment silently shifts.
        """
        import hashlib
        import json

        net = _make_network(6, sps=8)
        discovered, slots = net.slotted_aloha_discovery(120, rng=12)
        payload = json.dumps(
            {"discovered": sorted(discovered), "slots": slots},
            separators=(",", ":"),
        )
        fingerprint = hashlib.sha256(payload.encode()).hexdigest()
        assert fingerprint == (
            "de159ca5836257a5cd4a20c834cba15c"
            "47e21fc0e8e32944873200d7ed9e51f7"
        ), payload

    def test_draw_order_independent_of_id_insertion_history(self):
        """Same tag-id set, different construction order: same outcome."""
        def build(order):
            tags = [
                NetworkTag(
                    config=TagConfig(
                        tag_id=i, symbol_rate_hz=2e6, samples_per_symbol=8
                    ),
                    distance_m=2.0 + i,
                )
                for i in order
            ]
            return MmTagNetwork(tags, environment=Environment.anechoic())

        forward = build(range(5)).slotted_aloha_discovery(80, rng=5)
        shuffled = build([3, 0, 4, 1, 2]).slotted_aloha_discovery(80, rng=5)
        assert forward == shuffled


class TestDiagnostics:
    def test_per_tag_snr_ordering(self):
        net = _make_network(3)
        snrs = net.per_tag_snr_db()
        assert snrs[0] > snrs[2]  # closer tag, higher SNR

    def test_run_single_link(self):
        net = _make_network(2, sps=8)
        result = net.run_single_link(1, num_payload_bits=256, rng=0)
        assert result.frame_success

    def test_run_single_link_unknown_id(self):
        with pytest.raises(KeyError):
            _make_network(1).run_single_link(99)


class TestInventoryResult:
    def test_aggregate_and_per_tag(self):
        result = InventoryResult(
            num_slots=10,
            slot_duration_s=0.1,
            delivered_bits={1: 500, 2: 1000},
            attempted_bits={1: 1000, 2: 1000},
        )
        assert result.duration_s == pytest.approx(1.0)
        assert result.aggregate_goodput_bps == pytest.approx(1500.0)
        assert result.per_tag_goodput_bps()[1] == pytest.approx(500.0)

    def test_jain_bounds(self):
        unfair = InventoryResult(10, 0.1, {1: 1000, 2: 0}, {1: 1000, 2: 1000})
        assert 0.5 <= unfair.jain_fairness() <= 0.500001

    def test_jain_all_zero_rates_is_perfectly_fair(self):
        # All-equal allocations score 1.0 — including all-zero, where
        # everyone is equally starved (this used to return 0.0).
        starved = InventoryResult(10, 0.1, {1: 0, 2: 0}, {1: 0, 2: 0})
        assert starved.jain_fairness() == 1.0

    def test_jain_empty_population_is_zero(self):
        # No tags → no allocation to judge: defined as 0.0.
        empty = InventoryResult(10, 0.1, {}, {})
        assert empty.jain_fairness() == 0.0

    def test_jain_contract_matches_net_population(self):
        """The two Jain implementations share one edge-case contract."""
        from repro.net.population import jain_fairness as net_jain

        cases = [
            {},  # empty -> 0.0
            {1: 0, 2: 0, 3: 0},  # all-zero -> 1.0
            {1: 700, 2: 700},  # all-equal -> 1.0
            {1: 1000, 2: 0, 3: 0, 4: 0},  # one hog -> 1/n
        ]
        for delivered in cases:
            result = InventoryResult(10, 0.1, delivered, dict(delivered))
            rates = list(result.per_tag_goodput_bps().values())
            assert result.jain_fairness() == pytest.approx(
                net_jain(rates)
            ), delivered
