"""Tests for repro.core.session."""

import numpy as np
import pytest

from repro.channel.waypoint import RandomWaypointModel, TracePoint
from repro.core.session import EpochRecord, MobileSession, SessionSummary


def _static_trace(distance: float, num_points: int = 4) -> list[TracePoint]:
    return [
        TracePoint(time_s=float(k), x_m=distance, y_m=0.0) for k in range(num_points)
    ]


class TestSessionSummary:
    def _record(self, mcs, ok, bits, t=0.0):
        return EpochRecord(
            time_s=t, distance_m=3.0, azimuth_deg=0.0, snr_db=20.0,
            modulation=mcs, frame_success=ok, delivered_bits=bits,
        )

    def test_delivered_bits_sum(self):
        summary = SessionSummary(
            epochs=[self._record("QPSK", True, 100), self._record("QPSK", False, 0)]
        )
        assert summary.delivered_bits == 100

    def test_outage_fraction(self):
        summary = SessionSummary(
            epochs=[self._record(None, False, 0), self._record("QPSK", True, 10)]
        )
        assert summary.outage_fraction == pytest.approx(0.5)

    def test_frame_success_fraction_ignores_outage(self):
        summary = SessionSummary(
            epochs=[
                self._record(None, False, 0),
                self._record("QPSK", True, 10),
                self._record("QPSK", False, 0),
            ]
        )
        assert summary.frame_success_fraction == pytest.approx(0.5)

    def test_mcs_switch_count(self):
        summary = SessionSummary(
            epochs=[
                self._record("16QAM", True, 1),
                self._record("16QAM", True, 1),
                self._record("QPSK", True, 1),
                self._record(None, False, 0),
                self._record("BPSK", True, 1),
            ]
        )
        assert summary.mcs_switches() == 2

    def test_mean_goodput(self):
        summary = SessionSummary(
            epochs=[self._record("QPSK", True, 1000), self._record("QPSK", True, 1000)]
        )
        assert summary.mean_goodput_bps(epoch_duration_s=1.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            summary.mean_goodput_bps(0.0)

    def test_empty_summary_safe(self):
        summary = SessionSummary()
        assert summary.outage_fraction == 0.0
        assert summary.frame_success_fraction == 0.0
        assert summary.mean_goodput_bps(1.0) == 0.0


class TestMobileSession:
    def test_rejects_tiny_frame(self):
        with pytest.raises(ValueError):
            MobileSession(frame_bits=4)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            MobileSession().run_trace([])

    def test_close_static_trace_delivers_everything(self):
        session = MobileSession(frame_bits=512)
        summary = session.run_trace(_static_trace(2.0), rng=0)
        assert summary.outage_fraction == 0.0
        assert summary.frame_success_fraction == 1.0
        assert summary.delivered_bits == 4 * 512

    def test_far_static_trace_is_outage(self):
        session = MobileSession(frame_bits=512)
        summary = session.run_trace(_static_trace(40.0), rng=0)
        assert summary.outage_fraction == 1.0
        assert summary.delivered_bits == 0

    def test_close_epochs_use_denser_mcs_than_far(self):
        session = MobileSession(frame_bits=256)
        trace = _static_trace(1.5, 2) + _static_trace(11.0, 2)
        summary = session.run_trace(trace, rng=1)
        near_mcs = summary.epochs[0].modulation
        far_mcs = summary.epochs[-1].modulation
        from repro.core.modulation import get_scheme

        assert get_scheme(near_mcs).bits_per_symbol > get_scheme(far_mcs).bits_per_symbol

    def test_azimuth_clipped_to_valid_incidence(self):
        session = MobileSession(frame_bits=256)
        trace = [TracePoint(time_s=0.0, x_m=0.1, y_m=3.0)]  # ~88 degrees
        summary = session.run_trace(trace, rng=0)
        assert abs(summary.epochs[0].azimuth_deg) <= 85.0

    def test_random_walk_end_to_end(self):
        model = RandomWaypointModel(x_min=1.5, x_max=6.0, y_min=-2.0, y_max=2.0)
        session = MobileSession(frame_bits=512)
        summary = session.run_random_walk(
            duration_s=6.0, epoch_interval_s=1.0, model=model, rng=3
        )
        assert summary.num_epochs == 7
        assert summary.delivered_bits > 0
        assert summary.frame_success_fraction > 0.7

    def test_deterministic_given_seed(self):
        model = RandomWaypointModel()
        a = MobileSession(frame_bits=256).run_random_walk(4.0, 1.0, model, rng=9)
        b = MobileSession(frame_bits=256).run_random_walk(4.0, 1.0, model, rng=9)
        assert a.epochs == b.epochs
