"""Statistical acceptance suite for the compiled fast tier.

The ``"fast"`` backend (:class:`repro.sim.fastlink.FastLinkSimulator`)
is a documented *statistical* tier: complex64 chain, bulk RNG draws,
FFT sync, quantized Rician taps.  It is never byte-compared to the
bit-exact tiers — its contract is that the BER and detection
*statistics* agree, judged by the reusable helpers in
:mod:`tests.stat_equiv` (Wilson-CI overlap as the acceptance criterion,
the two-proportion z-test as a sharper cross-check).

The grid spans ≥3 SNR operating points × ≥3 modulation schemes, plus
the Rician fading path, so every fast-tier kernel (sync, demod, tap
synthesis) is exercised against the serial reference.  All seeds are
fixed, so these are deterministic regression tests, not flaky
statistics: the counts were verified to agree at generation time and
any code drift that shifts them outside the intervals is a real
behaviour change.
"""

from __future__ import annotations

import logging
from dataclasses import replace

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.ap import APConfig
from repro.core.link import LinkConfig
from repro.core.tag import TagConfig
from repro.sim.batch import BatchLinkSimulator
from repro.sim.fastlink import FastLinkSimulator
from repro.sim.monte_carlo import estimate_link_ber
from tests.stat_equiv import proportions_differ, wilson_ci_overlap

_OFFICE = Environment.typical_office()
#: 32 frames per point: the per-frame interference/phase-noise states
#: are i.i.d. but *different draws* across tiers (bulk vs serial RNG
#: order), so tiny budgets can legitimately land non-overlapping CIs on
#: a steep waterfall; 32 frames keeps that sampling noise inside the
#: intervals while the whole grid stays a few seconds.
_MAX_BITS = 65_536
_FRAME_BITS = 2048

#: scheme -> three operating distances (m) bracketing its BER waterfall
#: on the office link: clean-ish, transitional, deep.
_GRID = {
    "QPSK": (12.0, 13.0, 14.0),
    "16QAM": (8.0, 9.0, 10.0),
    "OOK": (10.0, 11.0, 12.0),
}


def _counts(config, backend):
    estimate = estimate_link_ber(
        config,
        target_errors=10_000,  # never converges early: fixed bit budget
        max_bits=_MAX_BITS,
        bits_per_frame=_FRAME_BITS,
        seed=0,
        backend=backend,
    )
    return estimate


def _config(scheme, distance, **overrides):
    return LinkConfig(
        distance_m=distance,
        tag=TagConfig(modulation=scheme),
        environment=_OFFICE,
        **overrides,
    )


class TestStatisticalAgreement:
    @pytest.mark.parametrize(
        "scheme,distance",
        [(s, d) for s, ds in _GRID.items() for d in ds],
        ids=[f"{s}-{d}m" for s, ds in _GRID.items() for d in ds],
    )
    def test_ber_wilson_ci_overlap(self, scheme, distance):
        config = _config(scheme, distance)
        serial = _counts(config, "serial")
        fast = _counts(config, "fast")
        assert fast.bits_tested > 0, "fast tier detected nothing"
        assert wilson_ci_overlap(
            serial.bit_errors, serial.bits_tested,
            fast.bit_errors, fast.bits_tested,
        ), (
            f"{scheme}@{distance}m: serial "
            f"{serial.bit_errors}/{serial.bits_tested} vs fast "
            f"{fast.bit_errors}/{fast.bits_tested} CIs do not overlap"
        )
        assert not proportions_differ(
            serial.bit_errors, serial.bits_tested,
            fast.bit_errors, fast.bits_tested,
        )
        assert not proportions_differ(
            serial.frames_detected, serial.frames,
            fast.frames_detected, fast.frames,
        )

    def test_rician_fading_agrees_at_frame_granularity(self):
        """Quantized-tap synthesis must not shift the fading error rate.

        Under Rician fading, bit errors arrive in frame bursts whose
        severity is heavy-tailed (a deep fade yields a ~50%-BER frame of
        ~1000 errors; most frames are clean), so bit-level Wilson CIs
        wildly understate the sampling variance — the honest Bernoulli
        unit is the *frame*.  Compare frame-error proportions over a
        few hundred independent channel draws instead.
        """
        config = _config("QPSK", 8.5, rician_k_db=6.0)
        num_frames = 256
        exact = BatchLinkSimulator(config, num_payload_bits=_FRAME_BITS)
        fast = FastLinkSimulator(config, num_payload_bits=_FRAME_BITS)
        errors_exact, detected_exact = exact._score_frames(
            num_frames, np.random.default_rng(3)
        )
        errors_fast, detected_fast = fast._score_frames(
            num_frames, np.random.default_rng(3)
        )
        fer_exact = int(np.count_nonzero(errors_exact))
        fer_fast = int(np.count_nonzero(errors_fast))
        assert wilson_ci_overlap(fer_exact, num_frames, fer_fast, num_frames)
        assert not proportions_differ(
            fer_exact, num_frames, fer_fast, num_frames
        )
        assert not proportions_differ(
            int(detected_exact.sum()), num_frames,
            int(detected_fast.sum()), num_frames,
        )

    def test_deep_point_detection_collapses_on_both(self):
        """Far past the cliff both tiers must report mostly-missed frames."""
        config = _config("QPSK", 25.0)
        serial = _counts(config, "serial")
        fast = _counts(config, "fast")
        assert not proportions_differ(
            serial.frames_detected, serial.frames,
            fast.frames_detected, fast.frames,
        )


class TestTierMechanics:
    def test_equalizer_config_delegates_to_exact_tail(self):
        """Equalized links fall back to the bit-exact fused pass.

        The LMS equalizer is inherently sequential, so the fast tier
        delegates those configs wholesale — byte identity with the
        parent batch simulator is the contract there, not statistics.
        """
        config = _config("QPSK", 13.0, ap=APConfig(equalizer_taps=5))
        fast = FastLinkSimulator(config, num_payload_bits=_FRAME_BITS)
        exact = BatchLinkSimulator(config, num_payload_bits=_FRAME_BITS)
        assert fast._f_exact_tail
        errors_a, detected_a = fast._score_frames(
            4, np.random.default_rng(9)
        )
        errors_b, detected_b = exact._score_frames(
            4, np.random.default_rng(9)
        )
        assert np.array_equal(errors_a, errors_b)
        assert np.array_equal(detected_a, detected_b)

    def test_numba_absent_fallback_is_logged_not_silent(self, caplog):
        """The documented contract: degraded tiers announce themselves."""
        from repro.sim import jit

        if jit.HAVE_NUMBA:
            pytest.skip("numba present: no fallback to log")
        # The notice fires once per feature per process; clear the guard
        # so this test observes it regardless of suite ordering.
        jit._FALLBACKS_NOTIFIED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.jit"):
            _counts(_config("QPSK", 13.0), "fast")
        messages = [r.getMessage() for r in caplog.records]
        assert any("pure-numpy fallback" in m for m in messages), messages
        # ...and only once per feature even across repeated runs.
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.jit"):
            _counts(_config("QPSK", 13.0), "fast")
        assert not [
            r for r in caplog.records if "pure-numpy fallback" in r.getMessage()
        ]

    def test_soft_demod_fast_backend_agrees_in_sign(self):
        """The compiled soft demapper: same LLRs up to float ordering.

        Sign agreement is what the Viterbi decoder consumes; magnitudes
        may differ at machine epsilon from summation-order changes.
        """
        from repro.core.modulation import get_scheme

        constellation = get_scheme("16QAM").constellation
        rng = np.random.default_rng(2)
        sent = constellation.points[
            rng.integers(0, constellation.points.size, 500)
        ]
        rx = sent + 0.2 * (
            rng.standard_normal(500) + 1j * rng.standard_normal(500)
        )
        reference = constellation.soft_bits(rx, 0.08)
        fast = constellation.soft_bits(rx, 0.08, backend="fast")
        assert np.allclose(reference, fast, rtol=1e-9, atol=1e-12)
        assert np.array_equal(np.sign(reference), np.sign(fast))
        with pytest.raises(ValueError):
            constellation.soft_bits(rx, 0.08, backend="nope")

    def test_fast_never_shares_cache_entries_with_exact_tiers(self):
        """Belt-and-braces on top of the executor-level keyspace test."""
        from repro.sim.executor import BerSweepTask

        task = BerSweepTask(config=_config("QPSK", 13.0))
        exact_parts = task.cache_parts(13.0)
        fast_parts = replace(task, link_backend="fast").cache_parts(13.0)
        assert exact_parts["task"].link_backend == "serial"
        assert fast_parts["task"].link_backend == "fast"
        assert exact_parts != fast_parts
