"""Tests for repro.core.energy."""

import pytest

from repro.core.energy import TagEnergyModel


class TestCalibration:
    def test_headline_2p4_nj_per_bit(self):
        # The anchored figure: QPSK at 10 Msym/s -> 2.4 nJ/bit.
        report = TagEnergyModel().report("QPSK", 10e6)
        assert report.energy_per_bit_nj == pytest.approx(2.4, rel=1e-9)

    def test_total_power_at_headline_point(self):
        report = TagEnergyModel().report("QPSK", 10e6)
        assert report.total_power_w == pytest.approx(48e-3, rel=1e-9)


class TestScaling:
    def test_denser_modulation_cheaper_per_bit(self):
        model = TagEnergyModel()
        ook = model.report("OOK", 10e6).energy_per_bit_nj
        qpsk = model.report("QPSK", 10e6).energy_per_bit_nj
        qam = model.report("16QAM", 10e6).energy_per_bit_nj
        assert ook > qpsk > qam

    def test_higher_rate_amortises_static_power(self):
        model = TagEnergyModel()
        slow = model.report("QPSK", 1e6).energy_per_bit_nj
        fast = model.report("QPSK", 40e6).energy_per_bit_nj
        assert fast < slow

    def test_energy_per_bit_asymptote_is_dynamic_only(self):
        model = TagEnergyModel(static_power_w=8e-3, energy_per_transition_j=4e-9)
        very_fast = model.report("QPSK", 1e9).energy_per_bit_nj
        # asymptote: 4 nJ / 2 bits = 2 nJ/bit
        assert very_fast == pytest.approx(2.0, rel=0.01)

    def test_subcarrier_costs_power(self):
        model = TagEnergyModel()
        plain = model.report("QPSK", 10e6)
        hopped = model.report("QPSK", 10e6, subcarrier_hz=20e6)
        assert hopped.total_power_w > plain.total_power_w
        assert hopped.dynamic_power_w - plain.dynamic_power_w == pytest.approx(
            model.energy_per_transition_j * 40e6
        )

    def test_clock_rate(self):
        model = TagEnergyModel()
        assert model.clock_rate_hz(10e6, 20e6) == pytest.approx(50e6)

    def test_clock_rejects_bad_rates(self):
        model = TagEnergyModel()
        with pytest.raises(ValueError):
            model.clock_rate_hz(0.0)
        with pytest.raises(ValueError):
            model.clock_rate_hz(1e6, -1.0)


class TestComparisons:
    def test_two_orders_below_active_radio(self):
        from repro.baselines.active_radio import ActiveMmWaveRadio

        tag = TagEnergyModel().report("QPSK", 10e6)
        radio = ActiveMmWaveRadio()
        assert radio.energy_per_bit_nj(20e6) > 5 * tag.energy_per_bit_nj

    def test_sleep_power_far_below_active(self):
        model = TagEnergyModel()
        assert model.sleep_power_w() < 0.05 * model.static_power_w * 10

    def test_report_accepts_scheme_object(self):
        from repro.core.modulation import QPSK

        report = TagEnergyModel().report(QPSK, 10e6)
        assert report.modulation == "QPSK"

    def test_zero_bit_rate_rejected(self):
        report = TagEnergyModel().report("QPSK", 10e6)
        # sanity: property itself guards against nonsense construction
        assert report.bit_rate_hz > 0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            TagEnergyModel(static_power_w=-1.0)
