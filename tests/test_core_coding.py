"""Tests for repro.core.coding."""

import numpy as np
import pytest

from repro.core.coding import (
    append_crc16,
    append_crc32,
    block_deinterleave,
    block_interleave,
    check_crc16,
    check_crc32,
    crc16,
    crc32,
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)


class TestCrc16:
    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int8)
        assert crc16(bits) == crc16(bits.copy())

    def test_detects_single_bit_flip(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        protected = append_crc16(bits)
        assert check_crc16(protected)
        for position in (0, 13, 50, protected.size - 1):
            corrupted = protected.copy()
            corrupted[position] ^= 1
            assert not check_crc16(corrupted)

    def test_detects_burst_errors_up_to_16_bits(self, rng):
        bits = rng.integers(0, 2, 128).astype(np.int8)
        protected = append_crc16(bits)
        for burst_len in (2, 8, 16):
            corrupted = protected.copy()
            corrupted[10 : 10 + burst_len] ^= 1
            assert not check_crc16(corrupted)

    def test_too_short_fails(self):
        assert not check_crc16(np.zeros(10, dtype=np.int8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            crc16(np.array([0, 1, 2], dtype=np.int8))


class TestCrc32:
    def test_round_trip(self, rng):
        bits = rng.integers(0, 2, 200).astype(np.int8)
        assert check_crc32(append_crc32(bits))

    def test_detects_corruption(self, rng):
        bits = rng.integers(0, 2, 200).astype(np.int8)
        protected = append_crc32(bits)
        corrupted = protected.copy()
        corrupted[100] ^= 1
        assert not check_crc32(corrupted)

    def test_empty_payload_round_trip(self):
        protected = append_crc32(np.zeros(0, dtype=np.int8))
        assert protected.size == 32
        assert check_crc32(protected)

    def test_different_payloads_different_crc(self, rng):
        a = rng.integers(0, 2, 64).astype(np.int8)
        b = a.copy()
        b[0] ^= 1
        assert crc32(a) != crc32(b)


class TestHamming74:
    def test_round_trip_clean(self, rng):
        bits = rng.integers(0, 2, 400).astype(np.int8)
        coded = hamming74_encode(bits)
        assert coded.size == 700
        assert np.array_equal(hamming74_decode(coded), bits)

    def test_corrects_any_single_error_per_block(self, rng):
        bits = rng.integers(0, 2, 4).astype(np.int8)
        coded = hamming74_encode(bits)
        for position in range(7):
            corrupted = coded.copy()
            corrupted[position] ^= 1
            assert np.array_equal(hamming74_decode(corrupted), bits)

    def test_double_error_not_corrected(self, rng):
        bits = np.array([1, 0, 1, 1], dtype=np.int8)
        coded = hamming74_encode(bits)
        corrupted = coded.copy()
        corrupted[0] ^= 1
        corrupted[3] ^= 1
        assert not np.array_equal(hamming74_decode(corrupted), bits)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            hamming74_encode(np.zeros(5, dtype=np.int8))
        with pytest.raises(ValueError):
            hamming74_decode(np.zeros(8, dtype=np.int8))

    def test_code_is_linear(self):
        zero = hamming74_encode(np.zeros(4, dtype=np.int8))
        assert np.array_equal(zero, np.zeros(7, dtype=np.int8))


class TestRepetition:
    def test_round_trip_clean(self, rng):
        bits = rng.integers(0, 2, 50).astype(np.int8)
        assert np.array_equal(repetition_decode(repetition_encode(bits, 3), 3), bits)

    def test_majority_corrects_minority_errors(self):
        bits = np.array([1, 0], dtype=np.int8)
        coded = repetition_encode(bits, 5)
        coded[0] ^= 1
        coded[1] ^= 1  # two of five flipped in the first group
        assert np.array_equal(repetition_decode(coded, 5), bits)

    def test_factor_one_is_identity(self, rng):
        bits = rng.integers(0, 2, 20).astype(np.int8)
        assert np.array_equal(repetition_decode(repetition_encode(bits, 1), 1), bits)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            repetition_encode(np.zeros(4, dtype=np.int8), 0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            repetition_decode(np.zeros(7, dtype=np.int8), 3)


class TestInterleaver:
    def test_round_trip(self, rng):
        bits = rng.integers(0, 2, 97).astype(np.int8)  # not a multiple of depth
        interleaved = block_interleave(bits, depth=8)
        restored = block_deinterleave(interleaved, depth=8, original_length=97)
        assert np.array_equal(restored, bits)

    def test_burst_is_spread(self):
        bits = np.zeros(64, dtype=np.int8)
        interleaved = block_interleave(bits, depth=8)
        # corrupt an 8-bit burst in the interleaved domain
        interleaved[8:16] ^= 1
        restored = block_deinterleave(interleaved, depth=8, original_length=64)
        error_positions = np.flatnonzero(restored)
        # after deinterleaving, errors are spread at stride 8, not adjacent
        assert error_positions.size == 8
        assert np.all(np.diff(error_positions) >= 8 - 1)

    def test_depth_one_is_identity(self, rng):
        bits = rng.integers(0, 2, 30).astype(np.int8)
        out = block_deinterleave(block_interleave(bits, 1), 1, 30)
        assert np.array_equal(out, bits)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            block_interleave(np.zeros(4, dtype=np.int8), 0)

    def test_rejects_overlong_original_length(self):
        interleaved = block_interleave(np.zeros(8, dtype=np.int8), 4)
        with pytest.raises(ValueError):
            block_deinterleave(interleaved, 4, original_length=100)


class TestCodingGain:
    def test_hamming_beats_uncoded_at_moderate_error_rate(self, rng):
        # At p=0.02 raw, Hamming(7,4) should reduce the residual BER.
        bits = rng.integers(0, 2, 40_000).astype(np.int8)
        coded = hamming74_encode(bits)
        flips = rng.random(coded.size) < 0.02
        received = (coded ^ flips.astype(np.int8)).astype(np.int8)
        decoded = hamming74_decode(received)
        coded_ber = np.mean(decoded != bits)
        assert coded_ber < 0.02 / 3
