"""Assorted edge-case coverage across modules.

Each test pins a boundary behaviour a refactor could silently change:
degenerate sizes, exact thresholds, metadata propagation, and the
receiver's partial-failure paths.
"""

import math

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.ap import AccessPoint, APConfig, ReceiverResult
from repro.core.framing import HEADER_TOTAL_BITS, PREAMBLE_SYMBOLS
from repro.core.link import LinkConfig, simulate_link
from repro.core.network import FdmaPlan
from repro.core.tag import Tag, TagConfig, square_subcarrier_wave
from repro.dsp.signal import Signal
from repro.em.vanatta import VanAttaArray


class TestSignalMetadata:
    def test_scale_preserves_metadata(self):
        sig = Signal(np.ones(4), 1e6, metadata={"origin": "tag3"})
        assert sig.scale(2.0).metadata == {"origin": "tag3"}

    def test_frequency_shift_preserves_metadata(self):
        sig = Signal(np.ones(4), 1e6, metadata={"k": 1})
        assert sig.frequency_shift(1e3).metadata == {"k": 1}

    def test_metadata_copied_not_shared(self):
        sig = Signal(np.ones(4), 1e6, metadata={"k": 1})
        copy = sig.scale(1.0)
        copy.metadata["k"] = 2
        assert sig.metadata["k"] == 1

    def test_slice_time_clamps_to_bounds(self):
        sig = Signal(np.arange(10, dtype=float), 10.0)
        part = sig.slice_time(-5.0, 100.0)
        assert part.num_samples == 10


class TestReceiverPartialFailures:
    def test_decode_stream_too_short_not_detected(self):
        ap = AccessPoint(APConfig(adc=None))
        short = np.ones(PREAMBLE_SYMBOLS.size, dtype=complex)
        result = ap.decode_symbol_stream(short, start=0)
        assert not result.detected

    def test_zero_gain_stream_detected_but_undecoded(self):
        ap = AccessPoint(APConfig(adc=None))
        silent = np.zeros(PREAMBLE_SYMBOLS.size + HEADER_TOTAL_BITS + 8, dtype=complex)
        result = ap.decode_symbol_stream(silent, start=5)
        assert result.detected
        assert not result.header_ok
        assert result.start_sample == 5

    def test_result_success_requires_both_flags(self):
        result = ReceiverResult(detected=True, header_ok=True, payload_crc_ok=False)
        assert not result.success
        result = ReceiverResult(detected=True, header_ok=False, payload_crc_ok=True)
        assert not result.success

    def test_capture_on_pure_noise_returns_none(self, rng):
        ap = AccessPoint(APConfig(adc=None))
        noise = Signal(
            1e-6 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000)), 80e6
        )
        assert ap.capture_symbols(noise, samples_per_symbol=8) is None


class TestTagEdgeCases:
    def test_empty_payload_frame_still_has_preamble_and_header(self):
        tag = Tag(TagConfig(samples_per_symbol=4))
        frame = tag.make_frame(np.zeros(0, dtype=np.int8))
        waveform, stats = tag.backscatter_waveform(frame)
        minimum = PREAMBLE_SYMBOLS.size + HEADER_TOTAL_BITS
        assert stats.num_symbols >= minimum
        assert waveform.num_samples == stats.num_symbols * 4

    def test_empty_payload_round_trips(self):
        tag = Tag(TagConfig(samples_per_symbol=8))
        frame = tag.make_frame(np.zeros(0, dtype=np.int8))
        waveform, _ = tag.backscatter_waveform(frame)
        sig = waveform.scale(1e-3).pad(256, 256)
        result = AccessPoint(APConfig(adc=None)).receive_burst(sig, 8)
        assert result.success
        assert result.payload_bits.size == frame.payload_bits.size

    def test_single_bit_payload(self):
        tag = Tag(TagConfig(modulation="BPSK", samples_per_symbol=8))
        frame = tag.make_frame(np.array([1], dtype=np.int8))
        waveform, _ = tag.backscatter_waveform(frame)
        sig = waveform.scale(1e-3).pad(256, 256)
        result = AccessPoint(APConfig(adc=None)).receive_burst(sig, 8)
        assert result.success
        assert result.payload_bits[0] == 1

    def test_square_wave_first_sample_positive(self):
        wave = square_subcarrier_wave(8, 1e8, 12.5e6)
        assert wave[0] == 1.0

    def test_waveform_stats_duration_consistent(self):
        config = TagConfig(samples_per_symbol=4)
        tag = Tag(config)
        frame = tag.make_frame(np.zeros(64, dtype=np.int8))
        waveform, stats = tag.backscatter_waveform(frame)
        assert stats.duration_s == pytest.approx(waveform.duration)


class TestVanAttaEdgeCases:
    def test_single_pair_array(self):
        array = VanAttaArray(num_pairs=1, line_loss_db=0.0)
        expected = (2 * array.element.boresight_gain) ** 2
        assert array.monostatic_gain(0.0) == pytest.approx(expected, rel=1e-9)

    def test_gain_at_grazing_angle_far_below_broadside(self):
        array = VanAttaArray(num_pairs=4)
        grazing = array.monostatic_gain_db(math.radians(89.999))
        assert grazing < array.monostatic_gain_db(0.0) - 50.0

    def test_gain_exactly_behind_is_zero(self):
        array = VanAttaArray(num_pairs=4)
        assert array.monostatic_gain(math.radians(120.0)) == 0.0


class TestFdmaPlanEdgeCases:
    def test_single_tag_plan(self):
        plan = FdmaPlan(symbol_rate_hz=2e6)
        subs = plan.subcarriers(1)
        assert len(subs) == 1
        assert subs[0] >= plan.symbol_rate_hz

    def test_max_tags_zero_when_rate_too_low(self):
        plan = FdmaPlan(symbol_rate_hz=2e6)
        assert plan.max_tags(sample_rate_hz=8e6) == 0

    def test_rejects_zero_tag_request(self):
        with pytest.raises(ValueError):
            FdmaPlan(symbol_rate_hz=1e6).subcarriers(0)


class TestLinkEdgeCases:
    def test_minimum_distance_works(self):
        config = LinkConfig(distance_m=0.2, environment=Environment.anechoic())
        result = simulate_link(config, num_payload_bits=128, rng=0)
        assert result.frame_success

    def test_payload_not_multiple_of_bits_per_symbol(self):
        # 13 bits on QPSK: frame build pads; chain must round trip
        config = LinkConfig(distance_m=2.0)
        payload = np.ones(13, dtype=np.int8)
        result = simulate_link(config, payload_bits=payload, rng=1)
        assert result.frame_success
        assert np.array_equal(result.receiver.payload_bits[:13], payload)

    def test_noise_free_interference_free_is_errorless_at_any_range(self):
        config = LinkConfig(
            distance_m=30.0,
            environment=Environment.anechoic(),
            include_noise=False,
            phase_noise=None,
        )
        result = simulate_link(config, num_payload_bits=256, rng=0)
        assert result.ber == 0.0

    def test_angle_sign_symmetric(self):
        plus = LinkConfig(distance_m=4.0, incidence_angle_deg=30.0)
        minus = LinkConfig(distance_m=4.0, incidence_angle_deg=-30.0)
        from repro.core.link import link_snr_db

        assert link_snr_db(plus) == pytest.approx(link_snr_db(minus))


class TestEnvironmentEdgeCases:
    def test_zero_isolation_allowed(self):
        env = Environment(tx_rx_isolation_db=0.0)
        assert env.total_clutter_power(1.0) == pytest.approx(1.0)

    def test_interference_waveform_zero_samples(self, rng):
        env = Environment.typical_office()
        wave = env.interference_waveform(0, 1e6, 1.0, rng)
        assert wave.num_samples == 0
