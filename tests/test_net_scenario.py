"""Scenario zoo: backoff strategies, mobile reader, AoA/range sensing.

The load-bearing contracts:

* **Byte-identity of the default** — ``strategy=None`` and
  ``strategy="adaptive-p"`` reproduce the seed MAC bit for bit (trace
  digest AND report pickle), single-AP and metro.  This is the
  acceptance gate that lets the strategy slot ship inside the frozen
  determinism contract.
* **Draw-count stability** — swapping strategies never shifts the RNG
  stream of any *other* registered process (hypothesis property over
  strategy pairs and churn/blockage regimes).
* **Golden per-strategy digests** — each registered strategy's run is
  itself deterministic, pinned by digest.
* **Sharded parity** — the sharded metro engine accepts the default
  strategy spellings and loudly rejects everything else.
* **Sensing accuracy** — noiseless AoA inversion is exact to the 0.25°
  bucket grid; the end-to-end mobile run's median AoA error stays
  within one bucket.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.deployment import MultiAPConfig, run_multi_ap
from repro.net.scenario.backoff import (
    BACKOFF_STRATEGIES,
    DEFAULT_STRATEGY,
    AdaptivePStrategy,
    AdaptiveScaledBackoff,
    BackoffStrategy,
    BinaryExponentialBackoff,
    from_name,
    is_default_strategy,
    resolve_strategy,
    strategy_names,
    strategy_summaries,
)
from repro.net.scenario.mobile import (
    CircularTrajectory,
    MobileReaderConfig,
    WaypointTrajectory,
    run_mobile_reader,
)
from repro.net.scenario.sensing import AoaRangeEstimator, SensingSummary
from repro.net.scenario.shootout import ShootoutReport, ShootoutTask, run_shootout
from repro.net.link_model import LinkBudgetModel
from repro.net.sim import NetSimConfig, run_netsim
from repro.channel.environment import Environment
from repro.core.ap import APConfig
from repro.core.tag import TagConfig
from repro.sim.executor import SweepExecutor

#: The saturated 25-tag regime every golden digest below pins.
_GOLDEN_CONFIG = NetSimConfig(
    num_tags=25,
    num_slots=300,
    persistent=True,
    min_distance_m=1.5,
    max_distance_m=3.0,
)

#: strategy name -> sha256 trace digest of _GOLDEN_CONFIG at seed 0.
#: "adaptive-p" equals the strategy=None seed digest by construction.
_GOLDEN_DIGESTS = {
    "adaptive-p": "c8382854f45d807d1247d289af828bf6d8291359ccf9fb8482432c321f219aa0",
    "uniform": "aad94c1021125d312c09bdabfd2cc9f5d635f6d2cceaa733b206dfbf9b6d946c",
    "beb": "a769d267a67e0223d93059a45e457266fa77656a45000157a7141fa2cf0d548d",
    "eied": "5744f0d520d44b6a64f715c2c60e07a2d6f2bfdce8d83af20926208990f61466",
    "fibonacci": "317e06fc123d95834b33e6424be2a20179abac4d111f5d7650d40d0282fb6591",
    "asb": "fda2b49b80d0f8286ab7711ca7e20e2ec5b05391c185e371030ad15abd0d0d64",
}


class TestRegistry:
    def test_five_plus_default_registered(self):
        names = strategy_names()
        assert DEFAULT_STRATEGY in names
        assert len(names) >= 6  # adaptive-p + the five satellite rules
        assert set(_GOLDEN_DIGESTS) == set(names)

    def test_from_name_builds_fresh_instances(self):
        a, b = from_name("beb"), from_name("beb")
        assert isinstance(a, BinaryExponentialBackoff)
        assert a is not b  # strategies carry per-run window state

    def test_from_name_unknown_lists_registry(self):
        with pytest.raises(ValueError, match="adaptive-p.*beb"):
            from_name("definitely-not-a-strategy")

    def test_resolve_strategy_spellings(self):
        assert resolve_strategy(None) is None
        assert isinstance(resolve_strategy("asb"), AdaptiveScaledBackoff)
        inst = AdaptivePStrategy()
        assert resolve_strategy(inst) is inst

    def test_is_default_strategy_spellings(self):
        assert is_default_strategy(None)
        assert is_default_strategy("adaptive-p")
        assert is_default_strategy(AdaptivePStrategy())
        assert not is_default_strategy("beb")
        assert not is_default_strategy(from_name("uniform"))

    def test_summaries_cover_registry(self):
        assert dict(strategy_summaries()).keys() == set(strategy_names())
        for name, summary in strategy_summaries():
            assert summary, f"{name} needs a one-line summary"

    def test_registry_rejects_duplicate_names(self):
        from repro.net.scenario.backoff import register_strategy

        with pytest.raises(ValueError, match="already registered"):

            @register_strategy("beb", "dup")
            class Dup(BackoffStrategy):  # pragma: no cover - never used
                pass


class TestByteIdentity:
    """strategy=None and strategy='adaptive-p' are the same universe."""

    def test_single_ap_default_is_byte_identical(self):
        base = run_netsim(_GOLDEN_CONFIG, seed=0)
        named = run_netsim(_GOLDEN_CONFIG, seed=0, strategy="adaptive-p")
        assert base.trace_digest == named.trace_digest
        assert pickle.dumps(base) == pickle.dumps(named)
        assert base.trace_digest == _GOLDEN_DIGESTS["adaptive-p"]

    def test_single_ap_churn_blockage_default_identical(self):
        config = NetSimConfig(
            num_tags=30,
            num_slots=400,
            arrival_rate_hz=200.0,
            mean_dwell_s=0.05,
            blockage_rate_hz=40.0,
            spot_check_every=100,
            angle_spread_deg=30.0,
        )
        base = run_netsim(config, seed=3)
        named = run_netsim(config, seed=3, strategy="adaptive-p")
        assert pickle.dumps(base) == pickle.dumps(named)

    def test_fixed_p_config_keeps_seed_path_under_default_name(self):
        config = NetSimConfig(
            num_tags=20, num_slots=200, transmit_probability=0.1
        )
        base = run_netsim(config, seed=0)
        named = run_netsim(config, seed=0, strategy="adaptive-p")
        assert pickle.dumps(base) == pickle.dumps(named)

    def test_metro_default_is_byte_identical(self):
        config = MultiAPConfig(
            grid_rows=2, grid_cols=2, num_tags=60, num_slots=200,
            epoch_slots=50,
        )
        base = run_multi_ap(config, seed=0)
        named = run_multi_ap(config, seed=0, strategy="adaptive-p")
        assert base.trace_digest == named.trace_digest
        assert pickle.dumps(base) == pickle.dumps(named)


class TestGoldenDigests:
    @pytest.mark.parametrize("name", sorted(_GOLDEN_DIGESTS))
    def test_strategy_digest_pinned(self, name):
        report = run_netsim(_GOLDEN_CONFIG, seed=0, strategy=name)
        assert report.trace_digest == _GOLDEN_DIGESTS[name]

    def test_all_non_default_digests_distinct(self):
        assert len(set(_GOLDEN_DIGESTS.values())) == len(_GOLDEN_DIGESTS)

    def test_strategy_on_metro_runs_deterministically(self):
        config = MultiAPConfig(
            grid_rows=2, grid_cols=2, num_tags=60, num_slots=200,
            epoch_slots=50,
        )
        a = run_multi_ap(config, seed=0, strategy="beb")
        b = run_multi_ap(config, seed=0, strategy="beb")
        assert a.trace_digest == b.trace_digest
        assert a.trace_digest != run_multi_ap(config, seed=0).trace_digest


class TestDrawCountStability:
    """Swapping strategies never shifts the other processes' streams.

    The witness: every per-process RNG stream is a pure function of
    (root seed, registration slot), and the MAC consumes draws only
    from its own stream.  So across strategies the churn process must
    deploy identical tag geometries, schedule identical arrivals and
    dwell times, and the blockage process must generate identical
    outage windows — observable as identical population distances and
    identical blocked-slot counts.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        pair=st.tuples(
            st.sampled_from(sorted(_GOLDEN_DIGESTS)),
            st.sampled_from(sorted(_GOLDEN_DIGESTS)),
        ),
        seed=st.integers(0, 2**16),
        churned=st.booleans(),
    )
    def test_other_streams_invariant_under_strategy_swap(
        self, pair, seed, churned
    ):
        config = NetSimConfig(
            num_tags=12,
            num_slots=120,
            persistent=True,
            min_distance_m=1.5,
            max_distance_m=3.0,
            arrival_rate_hz=300.0 if churned else 0.0,
            mean_dwell_s=0.05 if churned else None,
            blockage_rate_hz=50.0 if churned else 0.0,
        )
        a = run_netsim(config, seed=seed, strategy=pair[0])
        b = run_netsim(config, seed=seed, strategy=pair[1])
        # Churn stream untouched: identical arrival counts and
        # identical deployed geometry (seed_key pins the root).
        assert a.seed_key == b.seed_key
        assert a.arrivals == b.arrivals
        assert a.tags_total == b.tags_total
        # Blockage stream untouched: the outage plan is drawn before
        # any MAC slot, so blocked-slot counts can differ only through
        # early drain — persistent mode never drains.
        assert a.slots_run == b.slots_run
        assert a.blocked_slots == b.blocked_slots

    def test_deployed_geometry_identical_across_strategies(self):
        # Direct array-level witness, stronger than report fields.
        from repro.net.engine import Simulator
        from repro.net.link_model import LinkBudgetModel as LBM

        geoms = {}
        for name in ("uniform", "asb"):
            seen = {}
            config = NetSimConfig(
                num_tags=15, num_slots=60, persistent=True,
                arrival_rate_hz=500.0, mean_dwell_s=0.02,
            )
            report = run_netsim(config, seed=7, strategy=name)
            geoms[name] = (report.arrivals, report.departures)
        assert geoms["uniform"] == geoms["asb"]


class TestShardParity:
    def test_sharded_accepts_default_spellings(self):
        from repro.net.shard import run_multi_ap_sharded

        config = MultiAPConfig(
            grid_rows=2, grid_cols=2, num_tags=40, num_slots=100,
            epoch_slots=50,
        )
        serial = run_multi_ap(config, seed=0)
        executor = SweepExecutor("serial")
        for spelling in (None, "adaptive-p", AdaptivePStrategy()):
            sharded = run_multi_ap_sharded(
                config, seed=0, shards=2, executor=executor,
                strategy=spelling,
            )
            assert sharded.trace_digest == serial.trace_digest

    @pytest.mark.parametrize(
        "bad", ["beb", "uniform", "eied", "fibonacci", "asb"]
    )
    def test_sharded_rejects_non_default_loudly(self, bad):
        from repro.net.shard import run_multi_ap_sharded

        config = MultiAPConfig(
            grid_rows=2, grid_cols=2, num_tags=40, num_slots=100,
        )
        with pytest.raises(ValueError, match="adaptive-p"):
            run_multi_ap_sharded(
                config, seed=0, shards=2,
                executor=SweepExecutor("serial"), strategy=bad,
            )

    def test_strategy_rejected_for_non_aloha_protocols(self):
        config = NetSimConfig(
            num_tags=10, num_slots=50, protocol="inventory"
        )
        with pytest.raises(ValueError, match="aloha"):
            run_netsim(config, seed=0, strategy="beb")

    def test_strategy_and_fixed_p_mutually_exclusive(self):
        config = NetSimConfig(
            num_tags=10, num_slots=50, transmit_probability=0.2
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_netsim(config, seed=0, strategy="beb")


class TestSensing:
    def _link_model(self):
        return LinkBudgetModel(
            TagConfig(), APConfig(), Environment.anechoic(), 256
        )

    def test_noiseless_inversion_exact_to_bucket(self):
        lm = self._link_model()
        est = AoaRangeEstimator(lm)
        for theta in np.linspace(0.0, 60.0, 121):
            delta = lm.angle_gain_delta_db(theta)
            aoa = est.invert_angle(delta)
            bucket = round(theta / lm.angle_bucket_deg) * lm.angle_bucket_deg
            assert aoa == pytest.approx(bucket, abs=1e-9)

    def test_range_inversion_roundtrips_boresight(self):
        lm = self._link_model()
        est = AoaRangeEstimator(lm)
        for d in (1.5, 2.0, 3.0, 4.5):
            snr = float(lm.snr_db(np.array([d]))[0])
            e = est.estimate(0, 0, snr, 0.0, d, 0.0)
            assert e.est_range_m == pytest.approx(d, rel=1e-9)
            assert e.est_aoa_deg == 0.0

    def test_delta_table_monotone_nonincreasing(self):
        est = AoaRangeEstimator(self._link_model())
        assert np.all(np.diff(est.delta_db) <= 0)

    def test_empty_summary_is_nan_safe(self):
        s = SensingSummary.from_estimates([], 0.25)
        assert s.n_estimates == 0
        assert "no reads" in s.summary()

    def test_estimator_rejects_bad_max_angle(self):
        with pytest.raises(ValueError, match="max_angle_deg"):
            AoaRangeEstimator(self._link_model(), max_angle_deg=0.0)


class TestMobileReader:
    _CONFIG = MobileReaderConfig(num_tags=30, num_slots=600, epoch_slots=50)

    def test_deterministic_and_traced(self):
        a = run_mobile_reader(self._CONFIG, seed=0)
        b = run_mobile_reader(self._CONFIG, seed=0)
        assert a.trace_digest == b.trace_digest
        assert pickle.dumps(a) == pickle.dumps(b)
        assert a.epochs_run == 12
        assert a.reader_path == b.reader_path

    def test_median_aoa_error_within_one_bucket(self):
        report = run_mobile_reader(self._CONFIG, seed=0)
        assert report.sensing.n_estimates > 50
        assert report.sensing.aoa_error_p50_deg <= report.sensing.aoa_bucket_deg

    def test_waypoint_trajectory_runs_and_differs(self):
        circ = run_mobile_reader(self._CONFIG, seed=0)
        wayp = run_mobile_reader(
            MobileReaderConfig(
                num_tags=30, num_slots=600, epoch_slots=50,
                trajectory="waypoint",
            ),
            seed=0,
        )
        assert wayp.trace_digest != circ.trace_digest
        assert wayp.tags_read > 0

    def test_strategy_slot_applies_to_mobile_runs(self):
        base = run_mobile_reader(self._CONFIG, seed=0)
        beb = run_mobile_reader(self._CONFIG, seed=0, strategy="beb")
        named = run_mobile_reader(self._CONFIG, seed=0, strategy="adaptive-p")
        assert named.trace_digest == base.trace_digest
        assert beb.trace_digest != base.trace_digest
        assert beb.strategy == "beb"

    def test_repriced_geometry_matches_slant_formula(self):
        from repro.net.scenario.mobile import _slant_geometry

        xy = np.array([[1.0, 2.0], [-2.0, 0.5], [0.0, 0.0]])
        d, a = _slant_geometry(xy, (0.5, -0.5), altitude_m=2.0)
        horiz = np.hypot(xy[:, 0] - 0.5, xy[:, 1] + 0.5)
        assert d == pytest.approx(np.hypot(horiz, 2.0))
        assert a == pytest.approx(np.degrees(np.arctan2(horiz, 2.0)))

    def test_circular_trajectory_stays_on_circle(self):
        traj = CircularTrajectory(radius_m=3.0, speed_m_s=1.5)
        xy = traj.positions(np.linspace(0, 50, 37), rng=None)
        assert np.hypot(xy[:, 0], xy[:, 1]) == pytest.approx(3.0)

    def test_waypoint_trajectory_stays_in_field(self):
        traj = WaypointTrajectory(6.0, speed_min_m_s=1.0, speed_max_m_s=2.0)
        xy = traj.positions(
            np.arange(40, dtype=float), np.random.default_rng(0)
        )
        assert np.all(np.abs(xy[:, 1]) <= 3.0 + 1e-9)
        assert np.all(xy[:, 0] >= -3.0 - 1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="trajectory"):
            MobileReaderConfig(trajectory="teleport")
        with pytest.raises(ValueError, match="altitude"):
            MobileReaderConfig(altitude_m=0.0)
        with pytest.raises(ValueError, match="time_warp"):
            MobileReaderConfig(time_warp=0.0)


class TestShootout:
    _CALM = NetSimConfig(
        num_tags=25, num_slots=200, persistent=True,
        min_distance_m=1.5, max_distance_m=3.0,
    )

    def test_task_validates_strategy_names(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            ShootoutTask(config=self._CALM, strategies=("beb", "nope"))

    def test_task_is_cacheable_and_seed_keyed(self):
        task = ShootoutTask(config=self._CALM, seed=3)
        parts = task.cache_parts(1.0)
        assert parts["task"] is task
        assert task.strategy_for(1) == task.strategies[1]
        with pytest.raises(ValueError, match="outside"):
            task.strategy_for(99)

    def test_entrants_race_identical_universes(self):
        # Draw-count stability makes the race fair: every entrant sees
        # the same churn/blockage realisation under the shared seed.
        task = ShootoutTask(
            config=NetSimConfig(
                num_tags=15, num_slots=100, persistent=True,
                arrival_rate_hz=300.0, mean_dwell_s=0.05,
            ),
            strategies=("uniform", "beb"),
            seed=5,
        )
        a = task.run(0, np.random.SeedSequence(999))
        b = task.run(1, np.random.SeedSequence(111))
        assert a.arrivals == b.arrivals  # executor seed is unused
        assert a.seed_key == b.seed_key

    def test_run_shootout_finds_the_calm_surge_flip(self):
        surge = NetSimConfig(
            num_tags=120, num_slots=300, persistent=True,
            min_distance_m=1.5, max_distance_m=3.0,
            arrival_rate_hz=300.0, mean_dwell_s=0.05,
            blockage_rate_hz=40.0,
        )
        report = run_shootout(
            {"calm": self._CALM, "surge": surge},
            strategies=("uniform", "beb", "eied", "asb"),
            seed=0,
        )
        assert isinstance(report, ShootoutReport)
        assert report.regimes == ("calm", "surge")
        flips = report.ranking_flips()
        assert flips, "expected a cross-regime winner flip"
        assert report.winner("calm") != report.winner("surge")
        assert "ranking flip" in report.summary()

    def test_ranking_is_deterministic_and_complete(self):
        report = run_shootout(
            {"calm": self._CALM}, strategies=("uniform", "beb"), seed=0
        )
        assert set(report.ranking("calm")) == {"uniform", "beb"}
        with pytest.raises(ValueError, match="unknown regime"):
            report.ranking("storm")

    def test_shootout_composes_with_executor_cache(self, tmp_path):
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor("serial", cache=cache)
        kwargs = dict(
            regimes={"calm": self._CALM},
            strategies=("uniform", "beb"),
            seed=0,
            executor=executor,
        )
        first = run_shootout(**kwargs)
        second = run_shootout(**kwargs)
        assert first == second
        assert cache.stats.hits >= 2  # second pass served from cache
