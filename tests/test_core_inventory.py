"""Tests for repro.core.inventory — the Gen2-style arbitration protocol."""

import numpy as np
import pytest

from repro.core.inventory import (
    InventorySession,
    ProtocolTag,
    QAlgorithm,
    SlotOutcome,
    TagProtocolState,
)


class TestProtocolTag:
    def test_begin_round_arms_tag(self, rng):
        tag = ProtocolTag(tag_id=1)
        tag.begin_round(q=4, rng=rng)
        assert tag.state is TagProtocolState.ARBITRATE
        assert 0 <= tag.slot_counter < 16

    def test_acknowledged_tag_stays_quiet(self, rng):
        tag = ProtocolTag(tag_id=1, state=TagProtocolState.ACKNOWLEDGED)
        tag.begin_round(q=4, rng=rng)
        assert tag.state is TagProtocolState.ACKNOWLEDGED
        assert not tag.advance_slot()

    def test_advance_counts_down_then_replies(self, rng):
        tag = ProtocolTag(tag_id=1)
        tag.begin_round(q=2, rng=np.random.default_rng(0))
        replies = [tag.advance_slot() for _ in range(4)]
        assert sum(replies) <= 1  # replies at most once per round
        if any(replies):
            assert tag.state is TagProtocolState.REPLY

    def test_acknowledge_requires_reply_state(self):
        tag = ProtocolTag(tag_id=1)
        with pytest.raises(ValueError):
            tag.acknowledge()


class TestQAlgorithm:
    def test_idle_decreases_q(self):
        controller = QAlgorithm(q_float=4.0, step=0.5)
        controller.update(SlotOutcome.IDLE)
        assert controller.q_float == pytest.approx(3.5)

    def test_collision_increases_q(self):
        controller = QAlgorithm(q_float=4.0, step=0.5)
        controller.update(SlotOutcome.COLLISION)
        assert controller.q_float == pytest.approx(4.5)

    def test_single_leaves_q(self):
        controller = QAlgorithm(q_float=4.0)
        controller.update(SlotOutcome.SINGLE)
        assert controller.q_float == 4.0

    def test_clamped_at_bounds(self):
        controller = QAlgorithm(q_float=0.0, step=0.5)
        controller.update(SlotOutcome.IDLE)
        assert controller.q_float == 0.0
        controller = QAlgorithm(q_float=15.0, step=0.5)
        controller.update(SlotOutcome.COLLISION)
        assert controller.q_float == 15.0

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            QAlgorithm(step=0.0)

    def test_stays_pinned_at_min_q_under_idle_flood(self):
        # Once clamped, further idles must not push q_float below min_q
        # (a naive unclamped subtraction would drift negative and make
        # a later collision appear to "lose" its increment).
        controller = QAlgorithm(q_float=0.2, step=0.35)
        for _ in range(50):
            controller.update(SlotOutcome.IDLE)
        assert controller.q_float == 0.0
        assert controller.q == 0
        controller.update(SlotOutcome.COLLISION)
        assert controller.q_float == pytest.approx(0.35)

    def test_stays_pinned_at_max_q_under_collision_flood(self):
        controller = QAlgorithm(q_float=14.9, step=0.35)
        for _ in range(50):
            controller.update(SlotOutcome.COLLISION)
        assert controller.q_float == 15.0
        assert controller.q == 15
        controller.update(SlotOutcome.IDLE)
        assert controller.q_float == pytest.approx(14.65)

    def test_rejects_initial_q_outside_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            QAlgorithm(q_float=-0.5)
        with pytest.raises(ValueError, match="outside"):
            QAlgorithm(q_float=15.5)

    def test_custom_bounds_respected(self):
        controller = QAlgorithm(q_float=3.0, step=1.0, min_q=2, max_q=4)
        controller.update(SlotOutcome.IDLE)
        controller.update(SlotOutcome.IDLE)
        assert controller.q_float == 2.0
        for _ in range(5):
            controller.update(SlotOutcome.COLLISION)
        assert controller.q_float == 4.0


class TestInventorySession:
    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            InventorySession([])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            InventorySession([1, 1])

    def test_rejects_bad_read_probability(self):
        # p = 0 would make the session unfinishable: rejected up front,
        # as is anything outside (0, 1].
        for bad in (0.0, -0.1, 1.0001):
            with pytest.raises(ValueError, match="probability"):
                InventorySession([1], read_success_probability=bad)

    def test_perfect_channel_never_loses_a_read(self):
        # p = 1.0 is the upper extreme: every SINGLE slot must convert,
        # so reads_failed_channel stays exactly zero.
        session = InventorySession(list(range(50)), read_success_probability=1.0)
        stats = session.run_until_complete(rng=11)
        assert session.unread_count() == 0
        assert stats.reads_failed_channel == 0
        assert stats.slots_single == 50

    def test_zero_tag_session_is_rejected_not_hung(self):
        # The "zero-tag inventory" case belongs to the caller (the
        # network sim handles it by not starting a session); here it is
        # a contract violation, reported immediately.
        with pytest.raises(ValueError, match="empty"):
            InventorySession([])

    def test_empty_stats_efficiency_is_zero(self):
        # A session that never ran a slot divides 0/0: defined as 0.0.
        session = InventorySession([1])
        assert session.stats.efficiency == 0.0

    def test_reads_every_tag_eventually(self):
        session = InventorySession(list(range(40)))
        stats = session.run_until_complete(rng=0)
        assert session.unread_count() == 0
        assert stats.slots_single >= 40

    def test_slot_accounting_consistent(self):
        session = InventorySession(list(range(20)))
        stats = session.run_until_complete(rng=1)
        assert (
            stats.slots_idle + stats.slots_single + stats.slots_collision
            == stats.slots_total
        )

    def test_efficiency_in_aloha_ballpark(self):
        # framed slotted ALOHA with an adaptive Q settles near 1/e
        session = InventorySession(list(range(200)), controller=QAlgorithm(q_float=8.0))
        stats = session.run_until_complete(rng=2)
        assert 0.15 < stats.efficiency < 0.5

    def test_q_adapts_down_for_tiny_population(self):
        session = InventorySession([1, 2], controller=QAlgorithm(q_float=8.0))
        rng = np.random.default_rng(3)
        for _ in range(3):
            session.run_round(rng)
        assert session.controller.q < 8

    def test_lossy_channel_costs_slots_but_completes(self):
        clean = InventorySession(list(range(30)))
        clean_stats = clean.run_until_complete(rng=4)
        lossy = InventorySession(list(range(30)), read_success_probability=0.6)
        lossy_stats = lossy.run_until_complete(rng=4)
        assert lossy.unread_count() == 0
        assert lossy_stats.slots_total > clean_stats.slots_total
        assert lossy_stats.reads_failed_channel > 0

    def test_round_report_contents(self):
        session = InventorySession([1, 2, 3])
        round_result = session.run_round(np.random.default_rng(5))
        assert len(round_result.outcomes) == 2**round_result.q
        assert set(round_result.read_tag_ids) <= {1, 2, 3}

    def test_deterministic_given_seed(self):
        a = InventorySession(list(range(25)))
        b = InventorySession(list(range(25)))
        stats_a = a.run_until_complete(rng=7)
        stats_b = b.run_until_complete(rng=7)
        assert stats_a == stats_b

    def test_max_rounds_cap_respected(self):
        session = InventorySession(
            list(range(50)), controller=QAlgorithm(q_float=0.0, step=0.01)
        )
        stats = session.run_until_complete(rng=8, max_rounds=3)
        assert stats.rounds <= 3
