"""Determinism and semantics of the discrete-event engine.

The engine's contract (see :mod:`repro.net.engine`) is what every
network-layer guarantee rests on: total ``(time, seq)`` event order,
registration-order RNG streams, and a digest-bearing trace that
witnesses the full event history byte for byte.
"""

import json

import numpy as np
import pytest

from repro.net.engine import EventTrace, Process, Simulator, TraceEvent


class _Recorder(Process):
    """Test process that logs callback labels into a shared list."""

    def __init__(self, name, log):
        super().__init__(name)
        self.log = log

    def mark(self, label):
        self.log.append(label)


class TestEventOrder:
    def test_time_order(self):
        sim = Simulator(0)
        log = []
        sim.schedule(3.0, lambda: log.append("late"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(2.0, lambda: log.append("middle"))
        assert sim.run() == 3
        assert log == ["early", "middle", "late"]
        assert sim.now == 3.0

    def test_equal_time_ties_break_by_scheduling_order(self):
        sim = Simulator(0)
        log = []
        for label in "abcde":
            sim.schedule(1.0, lambda lab=label: log.append(lab))
        sim.run()
        assert log == list("abcde")

    def test_nested_scheduling_keeps_total_order(self):
        sim = Simulator(0)
        log = []

        def first():
            log.append("first")
            # same-time event scheduled *during* dispatch runs after
            # already-queued same-time events
            sim.schedule(0.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "nested"]

    def test_cancel_skips_event(self):
        sim = Simulator(0)
        log = []
        handle = sim.schedule(1.0, lambda: log.append("cancelled"))
        sim.schedule(2.0, lambda: log.append("kept"))
        sim.cancel(handle)
        assert sim.run() == 1
        assert log == ["kept"]

    def test_until_is_inclusive_boundary(self):
        sim = Simulator(0)
        log = []
        sim.schedule(1.0, lambda: log.append(1.0))
        sim.schedule(2.0, lambda: log.append(2.0))
        sim.schedule(2.5, lambda: log.append(2.5))
        sim.run(until=2.0)
        assert log == [1.0, 2.0]
        assert sim.peek_time() == 2.5
        sim.run()
        assert log == [1.0, 2.0, 2.5]

    def test_max_events_bounds_dispatch(self):
        sim = Simulator(0)
        log = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: log.append(i))
        assert sim.run(max_events=2) == 2
        assert log == [0, 1]

    def test_rejects_scheduling_into_the_past(self):
        sim = Simulator(0)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule(-0.5, lambda: None)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)


class TestRngStreams:
    def test_streams_assigned_in_registration_order(self):
        def draws(seed):
            sim = Simulator(seed)
            a = sim.add_process(Process("a"))
            b = sim.add_process(Process("b"))
            return a.rng.random(4), b.rng.random(4)

        a1, b1 = draws(7)
        a2, b2 = draws(7)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)
        # distinct processes get distinct streams
        assert not np.array_equal(a1, b1)

    def test_interleaving_does_not_perturb_streams(self):
        """A process's draws depend only on seed + registration slot."""
        sim1 = Simulator(3)
        p1 = sim1.add_process(Process("p"))
        _q1 = sim1.add_process(Process("q"))
        ref = p1.rng.random(8)

        sim2 = Simulator(3)
        p2 = sim2.add_process(Process("p"))
        q2 = sim2.add_process(Process("q"))
        q2.rng.random(100)  # q drawing heavily must not move p's stream
        np.testing.assert_array_equal(p2.rng.random(8), ref)

    def test_duplicate_process_name_rejected(self):
        sim = Simulator(0)
        sim.add_process(Process("p"))
        with pytest.raises(ValueError, match="duplicate"):
            sim.add_process(Process("p"))

    def test_seed_sequence_accepted(self):
        root = np.random.SeedSequence(42)
        sim = Simulator(root)
        p = sim.add_process(Process("p"))
        ref = np.random.default_rng(
            np.random.SeedSequence(42).spawn(1)[0]
        ).random(4)
        np.testing.assert_array_equal(p.rng.random(4), ref)


class TestTrace:
    def test_digest_covers_evicted_events(self):
        small = EventTrace(capacity=2)
        big = EventTrace(capacity=100)
        for i in range(10):
            event = TraceEvent(time_s=float(i), seq=i, process="p", kind="k")
            small.append(event)
            big.append(event)
        assert small.digest() == big.digest()
        assert len(small.tail()) == 2
        assert len(big.tail()) == 10
        assert small.total == big.total == 10

    def test_digest_sensitive_to_every_field(self):
        base = TraceEvent(time_s=1.0, seq=0, process="p", kind="k")
        variants = [
            TraceEvent(time_s=2.0, seq=0, process="p", kind="k"),
            TraceEvent(time_s=1.0, seq=1, process="p", kind="k"),
            TraceEvent(time_s=1.0, seq=0, process="q", kind="k"),
            TraceEvent(time_s=1.0, seq=0, process="p", kind="x"),
            TraceEvent(
                time_s=1.0, seq=0, process="p", kind="k", detail=(("n", 1),)
            ),
        ]
        def digest_of(event):
            trace = EventTrace()
            trace.append(event)
            return trace.digest()

        digests = {digest_of(e) for e in [base] + variants}
        assert len(digests) == len(variants) + 1

    def test_jsonl_dump_roundtrips(self, tmp_path):
        sim = Simulator(0)
        p = sim.add_process(Process("p"))
        sim.schedule(0.5, lambda: p.trace("tick", n=1))
        sim.run()
        path = sim.trace.dump(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["digest_sha256"] == sim.trace.digest()
        assert header["total_events"] == sim.trace.total
        body = [json.loads(line) for line in lines[1:]]
        assert any(e["kind"] == "tick" and e["n"] == 1 for e in body)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventTrace(capacity=0)

    def test_identical_runs_identical_digests(self):
        def run():
            sim = Simulator(11)
            p = sim.add_process(Process("p"))

            def tick(i=0):
                p.trace("tick", i=i, draw=float(p.rng.random()))
                if i < 20:
                    p.schedule(0.1, lambda: tick(i + 1))

            p.schedule(0.0, tick)
            sim.run()
            return sim.trace.digest()

        assert run() == run()
