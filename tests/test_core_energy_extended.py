"""Tests for the duty-cycle / battery extensions of repro.core.energy
and the eye/soft-bit additions to dsp/modulation."""

import numpy as np
import pytest

from repro.core.energy import TagEnergyModel
from repro.core.modulation import BPSK, QAM16, QPSK
from repro.dsp.measure import eye_opening
from repro.dsp.signal import Signal


class TestDutyCycle:
    def test_full_duty_equals_active(self):
        model = TagEnergyModel()
        active = model.report("QPSK", 10e6).total_power_w
        assert model.duty_cycled_power_w("QPSK", 10e6, 1.0) == pytest.approx(active)

    def test_zero_duty_equals_sleep(self):
        model = TagEnergyModel()
        assert model.duty_cycled_power_w("QPSK", 10e6, 0.0) == pytest.approx(
            model.sleep_power_w()
        )

    def test_monotone_in_duty(self):
        model = TagEnergyModel()
        powers = [model.duty_cycled_power_w("QPSK", 10e6, d) for d in (0.0, 0.1, 0.5, 1.0)]
        assert powers == sorted(powers)

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            TagEnergyModel().duty_cycled_power_w("QPSK", 10e6, 1.5)


class TestBatteryLifetime:
    def test_cr2032_at_one_percent_duty(self):
        model = TagEnergyModel()
        seconds = model.battery_lifetime_s(2400.0, "QPSK", 10e6, duty_cycle=0.01)
        days = seconds / 86_400
        assert 30 < days < 100  # ~50 days at 0.56 mW average

    def test_lower_duty_longer_life(self):
        model = TagEnergyModel()
        busy = model.battery_lifetime_s(2400.0, "QPSK", 10e6, 0.5)
        idle = model.battery_lifetime_s(2400.0, "QPSK", 10e6, 0.01)
        assert idle > 10 * busy

    def test_rejects_bad_battery(self):
        with pytest.raises(ValueError):
            TagEnergyModel().battery_lifetime_s(0.0, "QPSK", 10e6, 0.5)


class TestEyeOpening:
    def test_clean_nrz_eye_is_open(self, rng):
        symbols = (2 * rng.integers(0, 2, 200) - 1).astype(float)
        sig = Signal.from_symbols(symbols, 1e6, 8)
        assert eye_opening(sig, 8) > 0.95

    def test_noisy_eye_partially_closed(self, rng):
        symbols = (2 * rng.integers(0, 2, 400) - 1).astype(float)
        sig = Signal.from_symbols(symbols, 1e6, 8)
        noisy = Signal(sig.samples + 0.3 * rng.standard_normal(sig.num_samples), 1e6)
        opening = eye_opening(noisy, 8)
        assert 0.0 <= opening < 0.8

    def test_slew_limited_eye_smaller_at_edges(self, rng):
        from repro.dsp.filters import single_pole_lowpass

        symbols = (2 * rng.integers(0, 2, 300) - 1).astype(float)
        sig = Signal.from_symbols(symbols, 10e6, 8)
        slow = single_pole_lowpass(sig, 4e6)
        edge = eye_opening(slow, 8, sample_offset=1)
        centre = eye_opening(slow, 8, sample_offset=6)
        assert centre > edge

    def test_rejects_bad_args(self):
        sig = Signal.from_symbols(np.ones(10), 1e6, 4)
        with pytest.raises(ValueError):
            eye_opening(sig, 1)
        with pytest.raises(ValueError):
            eye_opening(sig, 4, sample_offset=7)

    def test_too_few_symbols_raises(self):
        sig = Signal.from_symbols(np.ones(2), 1e6, 4)
        with pytest.raises(ValueError):
            eye_opening(sig, 4)


class TestSoftBits:
    def test_signs_match_hard_decisions(self, rng):
        bits = rng.integers(0, 2, 200).astype(np.int8)
        symbols = QPSK.constellation.modulate(bits)
        noisy = symbols + 0.1 * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        llrs = QPSK.constellation.soft_bits(noisy, noise_variance=0.01)
        hard = (llrs < 0).astype(np.int8)
        assert np.array_equal(hard, QPSK.constellation.demodulate(noisy))

    def test_confidence_scales_with_distance(self):
        # a symbol close to the boundary has a smaller |LLR|
        near_boundary = np.array([0.05 + 0.05j])
        confident = np.array([1.0 + 1.0j]) / np.sqrt(2)
        llr_near = QPSK.constellation.soft_bits(near_boundary, 0.1)
        llr_far = QPSK.constellation.soft_bits(confident, 0.1)
        assert np.all(np.abs(llr_far) > np.abs(llr_near))

    def test_bpsk_llr_closed_form(self):
        # max-log LLR for BPSK: 4*Re(y)/N0 (points +-1, d^2 difference)
        y = np.array([0.3 + 0.1j])
        llr = BPSK.constellation.soft_bits(y, noise_variance=0.5)
        assert llr[0] == pytest.approx(4 * 0.3 / 0.5)

    def test_output_length(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        symbols = QAM16.constellation.modulate(bits)
        llrs = QAM16.constellation.soft_bits(symbols, 0.1)
        assert llrs.size == bits.size

    def test_rejects_bad_noise_variance(self):
        with pytest.raises(ValueError):
            QPSK.constellation.soft_bits(np.array([1.0 + 0j]), 0.0)
