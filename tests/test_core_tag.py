"""Tests for repro.core.tag."""

import math

import numpy as np
import pytest

from repro.core.framing import PREAMBLE_SYMBOLS
from repro.core.tag import Tag, TagConfig
from repro.em.vanatta import VanAttaArray
from repro.rf.components import RFSwitch


class TestTagConfig:
    def test_defaults_valid(self):
        config = TagConfig()
        assert config.sample_rate_hz == pytest.approx(80e6)
        assert config.scheme.name == "QPSK"

    def test_bit_rate(self):
        config = TagConfig(modulation="QPSK", symbol_rate_hz=10e6)
        assert config.bit_rate_hz() == pytest.approx(20e6)

    def test_with_modulation(self):
        config = TagConfig().with_modulation("ook")
        assert config.modulation == "OOK"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"symbol_rate_hz": 0.0},
            {"samples_per_symbol": 1},
            {"subcarrier_hz": -1.0},
            {"subcarrier_hz": 5e6},  # below symbol rate
            {"modulation": "QAM4096"},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            TagConfig(**kwargs)

    def test_subcarrier_needs_enough_oversampling(self):
        with pytest.raises(ValueError, match="samples_per_symbol too low"):
            TagConfig(subcarrier_hz=30e6, samples_per_symbol=4)


class TestStateSequence:
    def test_preamble_maps_to_bpsk_states(self, rng):
        tag = Tag(TagConfig())
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        states = tag.state_sequence(frame)
        preamble_states = states[: PREAMBLE_SYMBOLS.size]
        reflections = [s.reflection for s in preamble_states]
        assert np.allclose(reflections, PREAMBLE_SYMBOLS)

    def test_sequence_length_matches_frame(self, rng):
        tag = Tag(TagConfig(modulation="8PSK"))
        frame = tag.make_frame(rng.integers(0, 2, 90).astype(np.int8))
        assert len(tag.state_sequence(frame)) == frame.num_symbols()

    def test_ook_payload_contains_absorptive_states(self, rng):
        tag = Tag(TagConfig(modulation="OOK"))
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        payload_states = tag.state_sequence(frame)[26 + 60 :]
        assert any(s.is_absorptive for s in payload_states)


class TestReflectionSequence:
    def test_magnitude_bounded_by_losses(self, rng):
        config = TagConfig()
        tag = Tag(config)
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        reflections = tag.reflection_sequence(frame, 0.0)
        ceiling = (
            10 ** (-config.array.line_loss_db / 20)
            * config.switch.through_amplitude()
        )
        assert np.max(np.abs(reflections)) <= ceiling + 1e-12

    def test_terminated_state_shows_switch_leakage(self, rng):
        config = TagConfig(modulation="OOK")
        tag = Tag(config)
        frame = tag.make_frame(np.zeros(64, dtype=np.int8))
        reflections = tag.reflection_sequence(frame, 0.0)
        minimum = np.min(np.abs(reflections))
        assert minimum == pytest.approx(config.switch.leakage_amplitude(), rel=1e-9)

    def test_angle_changes_nothing_for_ideal_array(self, rng):
        tag = Tag(TagConfig())
        frame = tag.make_frame(rng.integers(0, 2, 32).astype(np.int8))
        r0 = tag.reflection_sequence(frame, 0.0)
        r30 = tag.reflection_sequence(frame, math.radians(30.0))
        assert np.allclose(r0, r30)


class TestBackscatterWaveform:
    def test_waveform_length(self, rng):
        config = TagConfig(samples_per_symbol=4)
        tag = Tag(config)
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        waveform, stats = tag.backscatter_waveform(frame)
        assert waveform.num_samples == frame.num_symbols() * 4
        assert stats.num_symbols == frame.num_symbols()

    def test_waveform_passive(self, rng):
        tag = Tag(TagConfig())
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        waveform, _ = tag.backscatter_waveform(frame)
        assert np.max(np.abs(waveform.samples)) <= 1.0 + 1e-9

    def test_transition_count_bounded(self, rng):
        tag = Tag(TagConfig())
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        _, stats = tag.backscatter_waveform(frame)
        assert 0 < stats.num_rf_transitions < stats.num_symbols

    def test_subcarrier_toggle_accounting(self, rng):
        config = TagConfig(subcarrier_hz=20e6, samples_per_symbol=16)
        tag = Tag(config)
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        waveform, stats = tag.backscatter_waveform(frame)
        expected = round(2 * 20e6 * waveform.duration)
        assert stats.num_subcarrier_toggles == pytest.approx(expected, abs=2)

    def test_subcarrier_moves_spectrum_off_dc(self, rng):
        from repro.dsp.spectrum import tone_power

        base_cfg = TagConfig(samples_per_symbol=16)
        sub_cfg = TagConfig(subcarrier_hz=20e6, samples_per_symbol=16)
        bits = rng.integers(0, 2, 256).astype(np.int8)
        base_wf, _ = Tag(base_cfg).backscatter_waveform(Tag(base_cfg).make_frame(bits))
        sub_wf, _ = Tag(sub_cfg).backscatter_waveform(Tag(sub_cfg).make_frame(bits))
        band = 8e6
        base_dc_band = tone_power(base_wf, 0.0, band)
        sub_dc_band = tone_power(sub_wf, 0.0, band)
        sub_offset_band = tone_power(sub_wf, 20e6, band) + tone_power(
            sub_wf, -20e6, band
        )
        assert sub_dc_band < 0.2 * base_dc_band
        assert sub_offset_band > sub_dc_band

    def test_slow_switch_smears_transitions(self, rng):
        slow = RFSwitch(rise_time_s=200e-9)  # 1.75 MHz bandwidth
        config = TagConfig(symbol_rate_hz=10e6, samples_per_symbol=8, switch=slow)
        tag = Tag(config)
        frame = tag.make_frame(rng.integers(0, 2, 64).astype(np.int8))
        waveform, _ = tag.backscatter_waveform(frame)
        fast_cfg = TagConfig(symbol_rate_hz=10e6, samples_per_symbol=8)
        fast_wf, _ = Tag(fast_cfg).backscatter_waveform(
            Tag(fast_cfg).make_frame(rng.integers(0, 2, 64).astype(np.int8))
        )
        # the slow switch removes high-frequency content
        from repro.dsp.spectrum import occupied_bandwidth

        assert occupied_bandwidth(waveform) < occupied_bandwidth(fast_wf)


class TestLinkBudgetHook:
    def test_ideal_gain_excludes_line_loss(self):
        lossy = TagConfig(array=VanAttaArray(num_pairs=4, line_loss_db=3.0))
        clean = TagConfig(array=VanAttaArray(num_pairs=4, line_loss_db=0.0))
        assert Tag(lossy).ideal_roundtrip_gain_db(0.0) == pytest.approx(
            Tag(clean).ideal_roundtrip_gain_db(0.0)
        )

    def test_ideal_gain_value(self):
        tag = Tag(TagConfig(array=VanAttaArray(num_pairs=4)))
        # (8 elements * 3.162 element gain)^2 -> 28.06 dB
        assert tag.ideal_roundtrip_gain_db(0.0) == pytest.approx(28.06, abs=0.05)

    def test_gain_drops_off_axis(self):
        tag = Tag(TagConfig())
        assert tag.ideal_roundtrip_gain_db(math.radians(45)) < tag.ideal_roundtrip_gain_db(0.0)
