"""Integration tests across modules: the invariants the experiments rely on."""

from dataclasses import replace

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.adaptation import RateAdapter
from repro.core.link import LinkConfig, link_snr_db, simulate_link
from repro.core.modulation import get_scheme
from repro.core.tag import TagConfig
from repro.em.vanatta import VanAttaArray
from repro.sim.monte_carlo import awgn_symbol_ber, estimate_link_ber


class TestSnrDistanceLaw:
    def test_measured_snr_follows_d4(self):
        """The headline radar-equation behaviour, measured end to end."""
        snrs = []
        for distance in (2.0, 4.0, 8.0):
            result = simulate_link(
                LinkConfig(distance_m=distance), num_payload_bits=2048, rng=17
            )
            snrs.append(result.snr_measured_db)
        # each doubling of distance costs ~12 dB
        assert snrs[0] - snrs[1] == pytest.approx(12.04, abs=2.0)
        assert snrs[1] - snrs[2] == pytest.approx(12.04, abs=2.0)

    def test_measured_tracks_analytic_across_range(self):
        # The receiver has an implementation floor near 48 dB (ADC
        # quantization plus channel-estimate error), so compare against
        # the analytic value capped at that floor.
        for distance in (1.0, 3.0, 6.0, 10.0):
            config = LinkConfig(distance_m=distance)
            result = simulate_link(config, num_payload_bits=2048, rng=5)
            expected = min(link_snr_db(config), 47.0)
            assert result.snr_measured_db >= expected - 2.0
            assert result.snr_measured_db <= link_snr_db(config) + 2.0


class TestBerTheoryAgreement:
    @pytest.mark.parametrize("name", ["BPSK", "QPSK"])
    def test_symbol_level_matches_closed_form(self, name):
        scheme = get_scheme(name)
        for snr_db in (4.0, 8.0):
            measured = awgn_symbol_ber(scheme, snr_db, num_bits=300_000, seed=2)
            assert measured == pytest.approx(
                scheme.theoretical_ber(snr_db), rel=0.2
            )

    def test_full_chain_ber_near_theory_at_sensitivity(self):
        # Park the link where QPSK theory says BER ~ 1e-2 and check the
        # waveform chain lands within a small factor of it.  Condition
        # on header success: at this SNR a fraction of headers are lost
        # (scored 0.5 by design), which is a framing property, not a
        # payload-BER property.
        import numpy as np

        config = LinkConfig(distance_m=4.0)
        target_snr = 7.3  # QPSK theory: ~1e-2
        # solve distance: snr(d) = snr(4m) - 40 log10(d/4)
        snr_at_4 = link_snr_db(config)
        distance = 4.0 * 10 ** ((snr_at_4 - target_snr) / 40.0)
        at_sensitivity = config.with_distance(distance)
        errors = 0
        bits = 0
        rng = np.random.default_rng(3)
        for _ in range(40):
            result = simulate_link(at_sensitivity, num_payload_bits=2048, rng=rng)
            if result.receiver.header_ok and result.ber < 0.5:
                errors += result.bit_errors
                bits += result.num_payload_bits
            if errors > 200:
                break
        assert bits > 0, "no frame decoded at sensitivity"
        theory = get_scheme("QPSK").theoretical_ber(target_snr)
        assert errors / bits == pytest.approx(theory, rel=0.6)


class TestVanAttaIsLoadBearing:
    def test_retro_array_extends_range_over_single_antenna(self):
        # Replace the 4-pair array with a 1-pair array: ~18 dB less
        # round-trip gain, so the same distance that works with the
        # default tag fails.
        far = 11.0
        default = simulate_link(
            LinkConfig(distance_m=far), num_payload_bits=1024, rng=8
        )
        tiny_array = TagConfig(array=VanAttaArray(num_pairs=1))
        crippled = simulate_link(
            LinkConfig(distance_m=far, tag=tiny_array), num_payload_bits=1024, rng=8
        )
        assert default.frame_success
        assert not crippled.frame_success

    def test_angle_robustness_comes_from_retro_directivity(self):
        # At 40 degrees incidence the Van Atta tag loses only the element
        # pattern; the link still works at moderate range.
        result = simulate_link(
            LinkConfig(distance_m=4.0, incidence_angle_deg=40.0),
            num_payload_bits=1024,
            rng=2,
        )
        assert result.frame_success


class TestRateAdaptationEndToEnd:
    def test_adapter_choice_is_decodable(self):
        adapter = RateAdapter()
        for distance in (2.0, 5.0, 9.0):
            config = LinkConfig(distance_m=distance)
            entry = adapter.select(link_snr_db(config))
            assert entry is not None
            result = simulate_link(
                config.with_modulation(entry.modulation),
                num_payload_bits=1024,
                rng=11,
            )
            assert result.frame_success, (distance, entry.modulation)

    def test_adapter_rate_decreases_with_distance(self):
        adapter = RateAdapter()
        rates = []
        for distance in (1.0, 4.0, 8.0, 14.0):
            entry = adapter.select(link_snr_db(LinkConfig(distance_m=distance)))
            rates.append(entry.bits_per_symbol if entry else 0)
        assert rates == sorted(rates, reverse=True)


class TestEnergyStory:
    def test_uplink_energy_two_orders_below_active_radio(self):
        from repro.baselines.active_radio import ActiveMmWaveRadio

        result = simulate_link(LinkConfig(distance_m=3.0), num_payload_bits=512, rng=0)
        radio = ActiveMmWaveRadio()
        rate = result.energy.bit_rate_hz
        assert radio.energy_per_bit_nj(rate) / result.energy.energy_per_bit_nj > 5


class TestInterferenceRejection:
    def test_office_environment_barely_costs_snr(self):
        quiet = simulate_link(
            LinkConfig(distance_m=5.0, environment=Environment.anechoic()),
            num_payload_bits=2048,
            rng=13,
        )
        office = simulate_link(
            LinkConfig(distance_m=5.0, environment=Environment.typical_office()),
            num_payload_bits=2048,
            rng=13,
        )
        assert office.snr_measured_db > quiet.snr_measured_db - 2.0

    def test_self_coherent_phase_noise_is_free(self):
        base = LinkConfig(distance_m=5.0)
        with_pn = simulate_link(base, num_payload_bits=2048, rng=19)
        without_pn = simulate_link(
            replace(base, phase_noise=None), num_payload_bits=2048, rng=19
        )
        assert with_pn.snr_measured_db == pytest.approx(
            without_pn.snr_measured_db, abs=1.0
        )


class TestDeterminism:
    def test_identical_seeds_identical_everything(self):
        config = LinkConfig(distance_m=6.0, environment=Environment.typical_office())
        a = simulate_link(config, num_payload_bits=512, rng=123)
        b = simulate_link(config, num_payload_bits=512, rng=123)
        assert a.ber == b.ber
        assert a.snr_measured_db == b.snr_measured_db
        assert a.evm == b.evm
        assert np.array_equal(a.receiver.payload_bits, b.receiver.payload_bits)

    def test_different_seeds_differ(self):
        config = LinkConfig(distance_m=6.0)
        a = simulate_link(config, num_payload_bits=512, rng=1)
        b = simulate_link(config, num_payload_bits=512, rng=2)
        assert a.snr_measured_db != b.snr_measured_db


class TestHeaderRobustness:
    def test_header_survives_where_dense_payload_fails(self):
        # At a distance where 16QAM payload BER is high, the BPSK header
        # still parses - the designed behaviour of always-BPSK headers.
        config = LinkConfig(distance_m=13.0).with_modulation("16QAM")
        result = simulate_link(config, num_payload_bits=1024, rng=4)
        assert result.receiver.header_ok
        assert not result.frame_success
