"""Seeded-backoff retry policy: determinism, clamping, validation."""

from __future__ import annotations

import pytest

from repro.sim.retry import (
    RetryExhaustedError,
    RetryPolicy,
    backoff_rng,
    call_with_retry,
)


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": 0.0},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max_s": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(-1)


class TestBackoffDeterminism:
    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_retries=4, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=100.0, jitter=0.0,
        )
        assert [policy.delay_s(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_delay_clamps_at_max(self):
        policy = RetryPolicy(
            max_retries=8, backoff_base_s=1.0, backoff_factor=10.0,
            backoff_max_s=5.0, jitter=0.0,
        )
        assert policy.delay_s(6) == 5.0

    def test_jittered_schedule_is_seed_deterministic(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.01, jitter=0.5)
        a = policy.schedule(seed=7, index=3)
        b = policy.schedule(seed=7, index=3)
        assert a == b
        assert len(a) == 5

    def test_different_point_different_schedule(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.01, jitter=0.5)
        assert policy.schedule(seed=7, index=3) != policy.schedule(seed=7, index=4)
        assert policy.schedule(seed=7, index=3) != policy.schedule(seed=8, index=3)

    def test_jitter_shrinks_but_never_inflates(self):
        policy = RetryPolicy(max_retries=1, backoff_base_s=1.0, jitter=0.5)
        delay = policy.delay_s(0, backoff_rng(0, 0, 0))
        assert 0.5 <= delay <= 1.0

    def test_backoff_rng_is_stable(self):
        assert (
            backoff_rng(1, 2, 3).random() == backoff_rng(1, 2, 3).random()
        )
        assert backoff_rng(1, 2, 3).random() != backoff_rng(1, 2, 4).random()


class TestCallWithRetry:
    def _policy(self):
        return RetryPolicy(max_retries=3, backoff_base_s=1e-6, jitter=0.0)

    def test_first_try_success_never_sleeps(self):
        slept = []
        outcome = call_with_retry(
            lambda attempt: attempt, self._policy(), sleep=slept.append
        )
        assert outcome.value == 0
        assert outcome.attempts == 1
        assert outcome.retried == 0
        assert slept == []

    def test_recovers_after_transient_failures(self):
        slept = []

        def flaky(attempt: int) -> str:
            if attempt < 2:
                raise RuntimeError(f"boom {attempt}")
            return "ok"

        outcome = call_with_retry(flaky, self._policy(), sleep=slept.append)
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.retried == 2
        assert len(outcome.errors) == 2
        assert "boom 0" in outcome.errors[0]
        assert len(slept) == 2

    def test_exhaustion_raises_with_all_tracebacks(self):
        def always(attempt: int):
            raise ValueError(f"dead {attempt}")

        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retry(always, self._policy(), sleep=lambda s: None)
        assert len(excinfo.value.errors) == 4  # 1 try + 3 retries
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_keyboard_interrupt_is_never_retried(self):
        calls = []

        def interrupted(attempt: int):
            calls.append(attempt)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            call_with_retry(interrupted, self._policy(), sleep=lambda s: None)
        assert calls == [0]

    def test_sleep_schedule_matches_policy(self):
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.25, backoff_factor=2.0, jitter=0.0
        )
        slept = []

        def flaky(attempt: int) -> int:
            if attempt < 2:
                raise RuntimeError("boom")
            return 1

        call_with_retry(flaky, policy, sleep=slept.append)
        assert slept == [0.25, 0.5]
