"""Tests for repro.rf.cascade."""

import pytest

from repro.rf.cascade import CascadeStage, cascade_gain, cascade_noise_figure


class TestCascadeStage:
    def test_passive_stage_nf_equals_loss(self):
        cable = CascadeStage.passive("cable", 3.0)
        assert cable.gain_db == -3.0
        assert cable.noise_figure_db == 3.0

    def test_passive_rejects_negative_loss(self):
        with pytest.raises(ValueError):
            CascadeStage.passive("cable", -1.0)


class TestCascadeGain:
    def test_gains_sum_in_db(self):
        stages = [
            CascadeStage("lna", 20.0, 3.0),
            CascadeStage.passive("mixer", 7.0),
            CascadeStage("if_amp", 30.0, 5.0),
        ]
        assert cascade_gain(stages) == pytest.approx(43.0)


class TestCascadeNoiseFigure:
    def test_single_stage_is_its_own_nf(self):
        assert cascade_noise_figure([CascadeStage("lna", 20.0, 3.0)]) == pytest.approx(3.0)

    def test_friis_two_stage_known_value(self):
        # F = 2 + (10-1)/100 = 2.09 -> 3.2 dB
        stages = [
            CascadeStage("lna", 20.0, 3.0103),  # F = 2
            CascadeStage("if", 10.0, 10.0),  # F = 10
        ]
        assert cascade_noise_figure(stages) == pytest.approx(3.2, abs=0.05)

    def test_front_end_gain_suppresses_later_noise(self):
        noisy_backend = CascadeStage("backend", 0.0, 15.0)
        with_lna = [CascadeStage("lna", 25.0, 2.0), noisy_backend]
        without_lna = [CascadeStage("lna", 0.0, 2.0), noisy_backend]
        assert cascade_noise_figure(with_lna) < cascade_noise_figure(without_lna)

    def test_lossy_front_end_adds_directly(self):
        # 3 dB cable ahead of a 3 dB-NF LNA: composite NF ~ 6 dB
        stages = [CascadeStage.passive("cable", 3.0), CascadeStage("lna", 20.0, 3.0)]
        assert cascade_noise_figure(stages) == pytest.approx(6.0, abs=0.1)

    def test_empty_cascade_raises(self):
        with pytest.raises(ValueError):
            cascade_noise_figure([])

    def test_ap_receiver_budget_consistent_with_config_default(self):
        # The DESIGN.md 6 dB AP noise figure should be reachable with the
        # stated parts: LNA 3 dB NF / 20 dB gain, then mixer 7 dB loss,
        # then a noisy digitiser.
        stages = [
            CascadeStage("ADL8142 LNA", 20.0, 3.0),
            CascadeStage.passive("ZMDB-44H mixer", 7.0),
            CascadeStage("IF amplifier", 30.0, 5.0),
            CascadeStage("scope front end", 0.0, 25.0),
        ]
        assert cascade_noise_figure(stages) < 6.5
