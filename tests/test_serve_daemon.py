"""The AP daemon: deterministic replay, chaos robustness, ops endpoint.

The headline contract (ISSUE 8): replaying the same trace through the
same config yields a **byte-identical** final inventory pickle and
identical deterministic counters; under a
:class:`~repro.sim.faults.StreamFaultPlan` the daemon sheds at the
bound, quarantines garbage, and recovers — it never crashes and never
exceeds its queue or memory caps.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net.sim import NetSimConfig, run_netsim
from repro.serve.daemon import (
    APDaemon,
    IngestPipeline,
    LiveNetsimSource,
    ServeConfig,
    TraceReplaySource,
    run_service,
)
from repro.serve.events import MalformedEvent, ReadEvent
from repro.sim.faults import StreamFaultPlan, StreamFaultSpec


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """One small netsim trace dump shared by the replay tests."""
    path = tmp_path_factory.mktemp("serve") / "trace.jsonl"
    config = NetSimConfig(
        num_tags=40, num_slots=3000, protocol="aloha", trace_capacity=8192
    )
    run_netsim(config, seed=11, trace_path=path)
    return path


def _replay_config(trace_path, **overrides) -> ServeConfig:
    params: dict[str, object] = dict(
        trace_path=str(trace_path),
        service_rate_hz=0.0,
        status_interval_s=100.0,
    )
    params.update(overrides)
    return ServeConfig(**params)  # type: ignore[arg-type]


class TestServeConfigValidation:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ServeConfig()
        with pytest.raises(ValueError, match="exactly one"):
            ServeConfig(trace_path="x", live=True)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ServeConfig(live=True, duration_s=0.0)

    def test_bad_policy_and_depth(self):
        with pytest.raises(ValueError, match="policy"):
            ServeConfig(live=True, policy="drop-all")
        with pytest.raises(ValueError, match="queue_depth"):
            ServeConfig(live=True, queue_depth=0)

    def test_bad_port(self):
        with pytest.raises(ValueError, match="port"):
            ServeConfig(live=True, port=70000)

    def test_fractional_rate_limit_burst_rejected(self):
        # Buckets are built lazily per source; a bad burst must fail
        # at config time, not on the first event from a source.
        with pytest.raises(ValueError, match="rate_limit_burst"):
            ServeConfig(live=True, rate_limit_burst=0.5)


class TestDeterministicReplay:
    def test_byte_identical_state_and_counters(self, trace_path):
        r1 = run_service(_replay_config(trace_path))
        r2 = run_service(_replay_config(trace_path))
        assert r1.state_sha256 == r2.state_sha256
        assert json.dumps(r1.counters) == json.dumps(r2.counters)
        assert r1.drained

    def test_all_reads_land(self, trace_path):
        report = run_service(_replay_config(trace_path))
        assert report.counters["events_in"] == 40
        assert report.counters["events_out"] == 40
        assert report.inventory_stats["tracked"] == 40

    def test_checkpoint_written_and_loadable(self, trace_path, tmp_path):
        from repro.serve.inventory import LiveInventory

        ckpt = tmp_path / "inv.ckpt"
        report = run_service(
            _replay_config(trace_path, checkpoint_path=str(ckpt))
        )
        state = LiveInventory.load_checkpoint(ckpt)
        assert len(state["tags"]) == report.inventory_stats["tracked"]

    def test_duration_truncates_virtual_time(self, trace_path):
        full = run_service(_replay_config(trace_path))
        half = run_service(
            _replay_config(trace_path, duration_s=full.clock_s / 2)
        )
        assert half.counters["events_in"] < full.counters["events_in"]

    def test_corrupt_trace_lines_reach_dead_letter(self, trace_path,
                                                   tmp_path):
        mangled = tmp_path / "mangled.jsonl"
        lines = trace_path.read_text().splitlines()
        lines[5] = lines[5][:-10] + '"corrupt"}'
        mangled.write_text("\n".join(lines) + "\n")
        dlq = tmp_path / "dlq.jsonl"
        report = run_service(
            _replay_config(mangled, dead_letter_path=str(dlq))
        )
        assert report.counters["dead_letter"] >= 1
        assert report.dead_letter_lines >= 1
        for record in json.loads(
            "[" + ",".join(dlq.read_text().splitlines()) + "]"
        ):
            assert "reason" in record and "sha256" in record


class TestOverload:
    def test_queue_bounded_and_sheds_counted(self, trace_path):
        report = run_service(
            _replay_config(
                trace_path, queue_depth=4, service_rate_hz=100.0,
                policy="shed-oldest",
            )
        )
        counters = report.counters
        assert counters["queue_high_watermark"] <= 4
        assert counters["shed_oldest"] > 0
        assert (
            counters["events_out"] + counters["shed_oldest"]
            == counters["events_in"]
        )
        assert report.drained

    def test_block_policy_loses_nothing(self, trace_path):
        report = run_service(
            _replay_config(
                trace_path, queue_depth=4, service_rate_hz=100.0,
                policy="block",
            )
        )
        assert report.counters["events_out"] == report.counters["events_in"]
        assert report.counters["blocked"] > 0

    def test_rate_limiter_clips_source(self, trace_path):
        report = run_service(
            _replay_config(trace_path, rate_limit_hz=1.0, rate_limit_burst=5)
        )
        assert report.counters["rate_limited"] > 0
        assert (
            report.counters["events_out"]
            + report.counters["rate_limited"]
            == report.counters["events_in"]
        )


class TestPipelineSemantics:
    @staticmethod
    def _config(**overrides) -> ServeConfig:
        params: dict[str, object] = dict(live=True, service_rate_hz=0.0)
        params.update(overrides)
        return ServeConfig(**params)  # type: ignore[arg-type]

    @staticmethod
    def _read(seq: int, t: float, *, tag: int = 1,
              source: str = "s") -> ReadEvent:
        return ReadEvent(time_s=t, tag_id=tag, ap_id=0, bits=8,
                         source=source, seq=seq)

    def test_duplicates_dropped_within_window(self):
        pipeline = IngestPipeline(self._config(dedup_window=16))
        assert pipeline.ingest(self._read(1, 0.0), 0.0)
        assert not pipeline.ingest(self._read(1, 0.1), 0.1)
        assert pipeline.metrics.duplicates == 1

    def test_dedup_window_slides(self):
        pipeline = IngestPipeline(self._config(dedup_window=2))
        for seq in (1, 2, 3):
            pipeline.ingest(self._read(seq, seq * 0.1), seq * 0.1)
        # seq 1 slid out of the 2-wide window: re-ingesting it passes.
        assert pipeline.ingest(self._read(1, 0.5), 0.5)
        assert pipeline.metrics.duplicates == 0

    def test_dedup_is_per_source(self):
        pipeline = IngestPipeline(self._config())
        assert pipeline.ingest(self._read(1, 0.0, source="a"), 0.0)
        assert pipeline.ingest(self._read(1, 0.1, source="b"), 0.1)
        assert pipeline.metrics.duplicates == 0

    def test_backwards_time_clamped_and_counted(self):
        pipeline = IngestPipeline(self._config())
        pipeline.ingest(self._read(1, 5.0), 5.0)
        pipeline.ingest(self._read(2, 1.0), 1.0)
        assert pipeline.metrics.reordered == 1
        assert pipeline.clock_s >= 5.0

    def test_block_stall_not_counted_as_reordered(self):
        # Block backpressure advances the pipeline clock past in-order
        # arrivals; those are clamped but are NOT reordered events.
        pipeline = IngestPipeline(self._config(
            queue_depth=1, service_rate_hz=10.0, policy="block",
        ))
        for seq in range(5):
            pipeline.ingest(
                self._read(seq, seq * 1e-3, tag=seq), seq * 1e-3
            )
        assert pipeline.metrics.blocked > 0
        assert pipeline.metrics.reordered == 0

    def test_malformed_goes_to_dead_letter_not_queue(self):
        pipeline = IngestPipeline(self._config())
        bad = MalformedEvent(raw="{junk", reason="parse", source="s")
        assert not pipeline.ingest(bad, 0.0)
        assert pipeline.metrics.dead_letter == 1
        assert pipeline.metrics.events_in == 0


class TestStreamChaos:
    def _chaos_plan(self) -> StreamFaultPlan:
        return StreamFaultPlan(
            specs=(
                StreamFaultSpec(kind="flood", at_s=0.005, events=300),
                StreamFaultSpec(kind="stall", at_s=0.010, duration_s=0.05),
                StreamFaultSpec(kind="slow", at_s=0.0, duration_s=0.004,
                                factor=8.0),
                StreamFaultSpec(kind="malformed", at_s=0.0, duration_s=10.0,
                                probability=0.25),
                StreamFaultSpec(kind="duplicate", at_s=0.0, duration_s=10.0,
                                probability=0.25),
                StreamFaultSpec(kind="reorder", at_s=0.0, duration_s=10.0,
                                probability=0.25),
            ),
            seed=77,
        )

    def test_chaos_replay_is_deterministic(self, trace_path):
        def run():
            return run_service(
                _replay_config(trace_path, queue_depth=8,
                               service_rate_hz=2000.0),
                fault_plan=self._chaos_plan(),
            )

        r1, r2 = run(), run()
        assert r1.state_sha256 == r2.state_sha256
        assert json.dumps(r1.counters) == json.dumps(r2.counters)

    def test_every_degradation_path_walked(self, trace_path, tmp_path):
        dlq = tmp_path / "dlq.jsonl"
        report = run_service(
            _replay_config(trace_path, queue_depth=8,
                           service_rate_hz=2000.0,
                           dead_letter_path=str(dlq)),
            fault_plan=self._chaos_plan(),
        )
        counters = report.counters
        assert counters["queue_high_watermark"] <= 8  # flood bounded
        assert counters["shed_oldest"] > 0            # flood shed
        assert counters["dead_letter"] > 0            # malformed quarantined
        assert counters["duplicates"] > 0             # dups dropped
        assert counters["reordered"] > 0              # reorders clamped
        assert report.drained                         # recovered + drained
        assert dlq.exists() and dlq.read_text().strip()

    def test_flood_never_reaches_inventory_cap(self, trace_path):
        report = run_service(
            _replay_config(trace_path, queue_depth=8,
                           service_rate_hz=2000.0, max_tags=30),
            fault_plan=self._chaos_plan(),
        )
        assert report.inventory_stats["tracked"] <= 30
        assert report.inventory_stats["tracked_watermark"] <= 30


class TestLiveNetsimSource:
    def test_yields_paced_unique_reads(self):
        source = LiveNetsimSource(
            tags=8, slots=200, offered_rate_hz=1000.0, frame_bits=64, seed=4
        )
        stream = iter(source)
        pairs = [next(stream) for _ in range(50)]
        times = [t for t, _ in pairs]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(1e-3)
        seqs = [ev.seq for _, ev in pairs]
        assert len(set(seqs)) == len(seqs)

    def test_universes_use_disjoint_tag_blocks(self):
        source = LiveNetsimSource(
            tags=4, slots=40, offered_rate_hz=1000.0, frame_bits=64, seed=4
        )
        stream = iter(source)
        tags = set()
        for _ in range(500):  # enough to cross a universe boundary
            _, ev = next(stream)
            tags.add(ev.tag_id)
        assert max(tags) >= 4  # second universe's block reached


class TestOpsEndpoint:
    def test_routes_and_draining_readiness(self, trace_path):
        async def scenario():
            config = _replay_config(trace_path, port=0)
            daemon = APDaemon(config)
            # Serve the endpoint manually around a controlled lifecycle.
            await daemon.ops.start()
            port = daemon.ops.port

            async def get(path):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET {path} HTTP/1.1\r\n\r\n".encode()
                )
                await writer.drain()
                data = await reader.read()
                writer.close()
                head, _, body = data.partition(b"\r\n\r\n")
                return int(head.split()[1]), json.loads(body)

            daemon.state = "running"
            results = {
                "healthz": await get("/healthz"),
                "readyz_up": await get("/readyz"),
                "metrics": await get("/metrics"),
                "missing": await get("/nope"),
            }
            daemon.state = "draining"
            results["readyz_draining"] = await get("/readyz")
            await daemon.ops.stop()
            return results

        results = asyncio.run(scenario())
        assert results["healthz"][0] == 200
        assert results["healthz"][1]["alive"] is True
        assert results["readyz_up"][0] == 200
        assert results["metrics"][0] == 200
        assert "counters" in results["metrics"][1]
        assert results["missing"][0] == 404
        assert results["readyz_draining"][0] == 503

    def test_oversized_request_dropped_quietly(self):
        # A request line beyond the 64 KiB stream limit makes
        # readline raise ValueError; the handler must swallow it (no
        # unhandled task exception) and keep serving new connections.
        import gc

        from repro.serve.health import OpsServer

        async def scenario():
            unhandled: list[dict] = []
            asyncio.get_running_loop().set_exception_handler(
                lambda _loop, ctx: unhandled.append(ctx)
            )
            server = OpsServer(
                snapshot=lambda: {}, state=lambda: "running"
            )
            port = await server.start()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"GET /" + b"x" * 200_000 + b" HTTP/1.1\r\n\r\n")
            await writer.drain()
            dropped = await reader.read()
            writer.close()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            alive = await reader.read()
            writer.close()

            await server.stop()
            # Surface any never-retrieved task exception now.
            await asyncio.sleep(0.05)
            gc.collect()
            await asyncio.sleep(0)
            return unhandled, dropped, alive

        unhandled, dropped, alive = asyncio.run(scenario())
        assert unhandled == []
        assert dropped == b""  # connection closed without a response
        assert alive.startswith(b"HTTP/1.1 200")
