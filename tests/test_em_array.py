"""Tests for repro.em.array."""

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.em.antenna import patch_element
from repro.em.array import UniformLinearArray, array_factor, half_power_beamwidth_deg


class TestArrayFactor:
    def test_peak_is_n_at_broadside(self):
        af = array_factor(8, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M, 0.0)
        assert abs(af) == pytest.approx(8.0)

    def test_steering_moves_peak(self):
        steer = np.radians(20.0)
        af_at_steer = array_factor(
            8, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M, steer, steer_rad=steer
        )
        assert abs(af_at_steer) == pytest.approx(8.0)

    def test_nulls_exist_off_peak(self):
        # First null of an 8-element half-wave ULA at sin(theta) = 1/4
        theta_null = np.arcsin(2.0 / 8.0)
        af = array_factor(8, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M, theta_null)
        assert abs(af) < 1e-9

    def test_weights_change_pattern(self):
        taper = np.hamming(8)
        uniform = array_factor(
            8, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M, np.radians(12.0)
        )
        tapered = array_factor(
            8,
            DEFAULT_WAVELENGTH_M / 2,
            DEFAULT_WAVELENGTH_M,
            np.radians(12.0),
            weights=taper,
        )
        assert abs(tapered) != pytest.approx(abs(uniform), rel=1e-3)

    def test_vectorised_over_theta(self):
        thetas = np.linspace(-1, 1, 11)
        af = array_factor(4, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M, thetas)
        assert af.shape == (11,)

    def test_wrong_weight_count_raises(self):
        with pytest.raises(ValueError):
            array_factor(4, 1e-3, 1e-2, 0.0, weights=np.ones(3))

    @pytest.mark.parametrize("kwargs", [
        {"num_elements": 0},
        {"spacing_m": 0.0},
        {"wavelength_m": -1.0},
    ])
    def test_invalid_geometry_raises(self, kwargs):
        defaults = dict(
            num_elements=4, spacing_m=1e-3, wavelength_m=1e-2, theta_rad=0.0
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            array_factor(**defaults)


class TestBeamwidth:
    def test_formula(self):
        bw = half_power_beamwidth_deg(8, DEFAULT_WAVELENGTH_M / 2, DEFAULT_WAVELENGTH_M)
        assert bw == pytest.approx(np.degrees(0.886 / 4.0), rel=1e-6)

    def test_larger_array_narrower_beam(self):
        small = half_power_beamwidth_deg(4, 6e-3, 12e-3)
        large = half_power_beamwidth_deg(16, 6e-3, 12e-3)
        assert large < small


class TestUniformLinearArray:
    def test_boresight_gain_n_times_element(self):
        ula = UniformLinearArray(num_elements=8, element=patch_element(5.0))
        expected_db = 5.0 + 10 * np.log10(8)
        assert ula.boresight_gain_dbi() == pytest.approx(expected_db, abs=0.01)

    def test_steered_gain_near_peak_when_aligned(self):
        ula = UniformLinearArray(num_elements=8, element=patch_element(5.0))
        steer = np.radians(15.0)
        aligned = float(ula.gain_db(steer, steer_rad=steer))
        broadside = ula.boresight_gain_dbi()
        # element roll-off only; array factor fully recovered
        assert aligned > broadside - 1.5

    def test_gain_far_down_in_null(self):
        ula = UniformLinearArray(num_elements=8)
        theta_null = np.arcsin(2.0 / 8.0)
        assert float(ula.gain_db(theta_null)) < -40

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UniformLinearArray(num_elements=0)
        with pytest.raises(ValueError):
            UniformLinearArray(num_elements=4, spacing_m=-1.0)
