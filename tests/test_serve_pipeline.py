"""The ingest pipeline's parts: queue, bucket, histogram, quarantine.

Everything in :mod:`repro.serve` below the daemon is synchronous and
clock-injected; these tests drive each part on explicit virtual time
and pin the backpressure semantics the E23 benchmark relies on: a full
queue sheds (or blocks) *by policy*, every shed is counted, the queue
never exceeds its depth, and the whole contraption is a pure function
of the event stream.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.events import DeadLetterLog, MalformedEvent, ReadEvent
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.queue import BoundedIngestQueue, TokenBucket


def _event(seq: int, *, tag: int = 1, source: str = "s") -> ReadEvent:
    return ReadEvent(
        time_s=0.0, tag_id=tag, ap_id=0, bits=64, source=source, seq=seq
    )


class TestTokenBucket:
    def test_zero_rate_always_admits(self):
        bucket = TokenBucket(0.0)
        assert all(bucket.take(0.0) for _ in range(1000))

    def test_burst_then_refill(self):
        bucket = TokenBucket(10.0, burst=2.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)  # burst spent
        assert bucket.take(0.1)      # one token refilled
        assert not bucket.take(0.1)

    def test_refill_clamps_at_burst(self):
        bucket = TokenBucket(100.0, burst=4.0)
        for _ in range(4):
            assert bucket.take(0.0)
        admitted = sum(bucket.take(1000.0) for _ in range(10))
        assert admitted == 4

    def test_backwards_clock_does_not_refill(self):
        bucket = TokenBucket(10.0, burst=1.0)
        assert bucket.take(5.0)
        assert not bucket.take(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0.5)


class TestLatencyHistogram:
    def test_percentile_is_conservative_upper_bound(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.010)
        p99 = hist.percentile(99)
        assert p99 >= 0.010
        assert p99 <= 0.020  # next geometric bound above 10 ms

    def test_deterministic_buckets(self):
        h1, h2 = LatencyHistogram(), LatencyHistogram()
        samples = [1e-6 * (i + 1) ** 3 for i in range(200)]
        for s in samples:
            h1.observe(s)
        for s in samples:
            h2.observe(s)
        assert h1.bucket_counts() == h2.bucket_counts()

    def test_overflow_reports_max(self):
        hist = LatencyHistogram()
        hist.observe(1e9)
        assert hist.percentile(99) == 1e9

    def test_empty_and_mean(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) == 0.0
        assert hist.mean_s == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean_s == pytest.approx(3.0)

    def test_negative_clamps(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        assert hist.max_s == 0.0
        assert hist.total == 1


class TestBoundedQueueShedding:
    def _queue(self, policy: str, depth: int = 4, rate: float = 10.0):
        applied: list[tuple[int, float]] = []
        metrics = ServiceMetrics()
        queue = BoundedIngestQueue(
            depth=depth,
            policy=policy,
            service_rate_hz=rate,
            apply=lambda ev, t: applied.append((ev.seq, t)),
            metrics=metrics,
            service_factor=None,
        )
        return queue, metrics, applied

    def test_shed_newest_drops_arrival(self):
        queue, metrics, applied = self._queue("shed-newest")
        # Service time 0.1 s; pile 5 arrivals onto one instant.
        for seq in range(5):
            queue.offer(_event(seq), 0.0)
        assert len(queue) == 4
        assert metrics.shed_newest == 1
        queue.drain_all()
        assert [seq for seq, _ in applied] == [0, 1, 2, 3]

    def test_shed_oldest_drops_head(self):
        queue, metrics, applied = self._queue("shed-oldest")
        for seq in range(5):
            queue.offer(_event(seq), 0.0)
        assert len(queue) == 4
        assert metrics.shed_oldest == 1
        queue.drain_all()
        assert [seq for seq, _ in applied] == [1, 2, 3, 4]

    def test_block_stalls_and_loses_nothing(self):
        queue, metrics, applied = self._queue("block")
        last_effective = 0.0
        for seq in range(6):
            accepted, last_effective = queue.offer(_event(seq), 0.0)
            assert accepted
        assert metrics.blocked == 2
        assert metrics.blocked_wait_s > 0.0
        assert last_effective > 0.0  # backpressure surfaced to the caller
        queue.drain_all()
        assert [seq for seq, _ in applied] == [0, 1, 2, 3, 4, 5]
        assert metrics.shed_oldest == metrics.shed_newest == 0

    def test_depth_never_exceeded(self):
        for policy in ("block", "shed-oldest", "shed-newest"):
            queue, metrics, _ = self._queue(policy, depth=3)
            for seq in range(50):
                queue.offer(_event(seq), seq * 1e-4)
                assert len(queue) <= 3
            assert metrics.queue_high_watermark <= 3

    def test_latency_is_queue_delay(self):
        queue, metrics, _ = self._queue("block", depth=8, rate=10.0)
        for seq in range(4):
            queue.offer(_event(seq), 0.0)
        queue.drain_all()
        # 4 back-to-back services at 0.1 s: completions 0.1 .. 0.4.
        assert metrics.latency.total == 4
        assert metrics.latency.max_s == pytest.approx(0.4)

    def test_infinite_service_rate(self):
        queue, metrics, applied = self._queue("shed-oldest", rate=0.0)
        for seq in range(10):
            queue.offer(_event(seq), seq * 0.01)
        assert len(queue) <= 1
        queue.drain_all()
        assert len(applied) == 10
        assert metrics.shed_oldest == 0

    def test_slow_consumer_factor_dilates_service(self):
        metrics = ServiceMetrics()
        queue = BoundedIngestQueue(
            depth=64, policy="block", service_rate_hz=10.0,
            apply=lambda ev, t: None, metrics=metrics,
            service_factor=lambda t: 4.0,
        )
        queue.offer(_event(0), 0.0)
        queue.drain_all()
        assert metrics.latency.max_s == pytest.approx(0.4)

    def test_validation(self):
        metrics = ServiceMetrics()
        with pytest.raises(ValueError):
            BoundedIngestQueue(depth=0, policy="block", service_rate_hz=1.0,
                               apply=lambda e, t: None, metrics=metrics)
        with pytest.raises(ValueError):
            BoundedIngestQueue(depth=1, policy="bogus", service_rate_hz=1.0,
                               apply=lambda e, t: None, metrics=metrics)

    def test_deterministic_across_runs(self):
        def run():
            queue, metrics, applied = self._queue("shed-oldest", depth=5,
                                                  rate=100.0)
            for seq in range(200):
                queue.offer(_event(seq), seq * 0.003)
            queue.drain_all()
            return applied, json.dumps(metrics.deterministic_counters())

        assert run() == run()


class TestDeadLetterLog:
    def test_lines_complete_and_verifiable(self, tmp_path):
        log = DeadLetterLog(tmp_path / "dlq.jsonl")
        log.append(1.0, MalformedEvent(raw="{broken", reason="parse",
                                       source="trace"))
        log.append(2.0, MalformedEvent(raw="x" * 1000, reason="huge",
                                       source="chaos"))
        records = log.load()
        assert len(records) == 2
        assert log.lines_written == 2
        assert records[0]["reason"] == "parse"
        assert len(records[1]["raw"]) == 512  # truncated, hash over full
        for line in (tmp_path / "dlq.jsonl").read_text().splitlines():
            json.loads(line)  # every line is complete JSON

    def test_counter_only_mode(self):
        log = DeadLetterLog(None)
        log.append(0.0, MalformedEvent(raw="junk", reason="r"))
        assert log.lines_written == 1
        assert log.load() == []

    def test_truncates_previous_run(self, tmp_path):
        path = tmp_path / "dlq.jsonl"
        path.write_text('{"stale": true}\n')
        log = DeadLetterLog(path)
        assert log.load() == []


class TestMetricsViews:
    def test_deterministic_counters_exclude_wall_clock(self):
        metrics = ServiceMetrics()
        counters = metrics.deterministic_counters()
        assert "uptime_s" not in counters
        assert not any("per_s" in key for key in counters)

    def test_snapshot_contains_counters_and_rates(self):
        metrics = ServiceMetrics()
        metrics.events_in = 10
        metrics.count_read(2)
        metrics.count_read(0)
        snap = metrics.snapshot(queue_depth=3, clock_s=1.5)
        assert snap["queue_depth"] == 3
        assert snap["counters"]["events_in"] == 10
        assert snap["counters"]["per_ap_reads"] == {"0": 1, "2": 1}
        assert "events_in_per_s" in snap

    def test_status_line_shape(self):
        metrics = ServiceMetrics()
        line = metrics.status_line(queue_depth=1, queue_cap=8, tracked=5,
                                   clock_s=2.0)
        assert line.startswith("[serve +2.0s]")
        assert "q=1/8" in line
