"""Tests for repro.constants."""

import math

import pytest

from repro import constants


class TestPhysicalConstants:
    def test_speed_of_light_exact_si_value(self):
        assert constants.SPEED_OF_LIGHT == 299_792_458.0

    def test_boltzmann_exact_si_value(self):
        assert constants.BOLTZMANN == 1.380_649e-23

    def test_thermal_noise_density_is_minus_174_dbm_per_hz(self):
        assert constants.THERMAL_NOISE_DBM_HZ == pytest.approx(-174.0, abs=0.1)


class TestBandPlan:
    def test_carrier_in_24ghz_ism_band(self):
        assert 24.0e9 <= constants.DEFAULT_CARRIER_HZ <= 24.25e9

    def test_default_wavelength_about_12mm(self):
        assert constants.DEFAULT_WAVELENGTH_M == pytest.approx(12.43e-3, rel=1e-3)

    def test_wavelength_consistent_with_carrier(self):
        assert constants.DEFAULT_WAVELENGTH_M == pytest.approx(
            constants.SPEED_OF_LIGHT / constants.DEFAULT_CARRIER_HZ
        )


class TestWavelengthFunction:
    def test_known_value_at_1ghz(self):
        assert constants.wavelength(1e9) == pytest.approx(0.2998, rel=1e-3)

    def test_scales_inversely_with_frequency(self):
        assert constants.wavelength(2e9) == pytest.approx(
            constants.wavelength(1e9) / 2.0
        )

    @pytest.mark.parametrize("bad", [0.0, -1.0, -24e9])
    def test_rejects_non_positive_frequency(self, bad):
        with pytest.raises(ValueError):
            constants.wavelength(bad)


class TestEnergyCalibration:
    def test_qpsk_20mbps_operating_point_is_2p4_nj_per_bit(self):
        # The one energy figure attributable to mmTag: 8 mW static plus
        # 4 nJ/symbol at 10 Msym/s = 48 mW over 20 Mbps = 2.4 nJ/bit.
        power = (
            constants.DEFAULT_TAG_STATIC_POWER_W
            + constants.DEFAULT_SWITCH_ENERGY_PER_TRANSITION_J * 10e6
        )
        bits_per_s = 20e6
        assert power / bits_per_s == pytest.approx(2.4e-9)

    def test_switch_rise_time_supports_100msym(self):
        # 0.35 / 1 ns = 350 MHz: well above the fastest symbol rate used.
        assert 0.35 / constants.DEFAULT_SWITCH_RISE_TIME_S >= 100e6

    def test_default_symbol_rate_positive(self):
        assert constants.DEFAULT_SYMBOL_RATE_HZ > 0

    def test_default_oversampling_at_least_two(self):
        assert constants.DEFAULT_SAMPLES_PER_SYMBOL >= 2
