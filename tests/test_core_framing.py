"""Tests for repro.core.framing."""

import numpy as np
import pytest

from repro.core.coding import append_crc32
from repro.core.framing import (
    HEADER_TOTAL_BITS,
    PREAMBLE_SYMBOLS,
    Frame,
    FrameHeader,
    bits_from_bytes,
    bytes_from_bits,
)


class TestBitPacking:
    def test_round_trip(self):
        data = b"mmTag!"
        assert bytes_from_bits(bits_from_bytes(data)) == data

    def test_msb_first(self):
        bits = bits_from_bytes(b"\x80")
        assert bits[0] == 1 and np.all(bits[1:] == 0)

    def test_empty(self):
        assert bits_from_bytes(b"").size == 0

    def test_rejects_partial_byte(self):
        with pytest.raises(ValueError):
            bytes_from_bits(np.zeros(7, dtype=np.int8))


class TestPreamble:
    def test_zero_mean(self):
        assert np.sum(PREAMBLE_SYMBOLS) == pytest.approx(0.0)

    def test_26_symbols(self):
        assert PREAMBLE_SYMBOLS.size == 26

    def test_bpsk_alphabet(self):
        assert set(np.unique(PREAMBLE_SYMBOLS)) == {-1.0, 1.0}

    def test_sharp_autocorrelation(self):
        # [B13, -B13] has a structural sidelobe of 13 at lag +-13 (the
        # negated repeat); everything else stays at Barker level.  The
        # peak remains unique with 2x margin, which is what burst
        # detection needs.
        corr = np.correlate(PREAMBLE_SYMBOLS, PREAMBLE_SYMBOLS, mode="full")
        centre = corr.size // 2
        sidelobes = np.abs(np.delete(corr, centre))
        assert corr[centre] == pytest.approx(26.0)
        assert np.max(sidelobes) <= 0.5 * corr[centre]
        assert np.count_nonzero(np.abs(corr) == corr[centre]) == 1


class TestFrameHeader:
    def test_round_trip(self):
        header = FrameHeader(tag_id=42, modulation="QPSK", payload_length_bits=512)
        parsed = FrameHeader.from_bits(header.to_bits())
        assert parsed == header

    def test_total_bits_constant(self):
        header = FrameHeader(tag_id=1, modulation="OOK", payload_length_bits=8)
        assert header.to_bits().size == HEADER_TOTAL_BITS

    def test_corruption_returns_none(self):
        header = FrameHeader(tag_id=7, modulation="BPSK", payload_length_bits=100)
        bits = header.to_bits()
        bits[5] ^= 1
        assert FrameHeader.from_bits(bits) is None

    def test_wrong_length_returns_none(self):
        assert FrameHeader.from_bits(np.zeros(10, dtype=np.int8)) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tag_id": 256, "modulation": "QPSK", "payload_length_bits": 8},
            {"tag_id": -1, "modulation": "QPSK", "payload_length_bits": 8},
            {"tag_id": 0, "modulation": "NOPE", "payload_length_bits": 8},
            {"tag_id": 0, "modulation": "QPSK", "payload_length_bits": 1 << 16},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            FrameHeader(**kwargs)

    @pytest.mark.parametrize("modulation", ["OOK", "BPSK", "QPSK", "8PSK", "16QAM"])
    def test_every_modulation_encodable(self, modulation):
        header = FrameHeader(tag_id=3, modulation=modulation, payload_length_bits=64)
        parsed = FrameHeader.from_bits(header.to_bits())
        assert parsed is not None and parsed.modulation == modulation


class TestFrame:
    def test_build_pads_payload_to_symbol_boundary(self, rng):
        # 10 bits + 32 CRC = 42, not divisible by 3 (8PSK): pad to 48-32=16
        bits = rng.integers(0, 2, 10).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="8PSK", payload_bits=bits)
        assert (frame.payload_bits.size + 32) % 3 == 0
        assert np.array_equal(frame.payload_bits[:10], bits)

    def test_symbol_count_accounting(self, rng):
        bits = rng.integers(0, 2, 96).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="QPSK", payload_bits=bits)
        expected = 26 + HEADER_TOTAL_BITS + (96 + 32) // 2
        assert frame.num_symbols() == expected
        assert frame.all_symbols().size == expected

    def test_duration(self, rng):
        bits = rng.integers(0, 2, 96).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="QPSK", payload_bits=bits)
        assert frame.duration_s(10e6) == pytest.approx(frame.num_symbols() / 10e6)

    def test_duration_rejects_bad_rate(self, rng):
        frame = Frame.build(tag_id=1, modulation="BPSK", payload_bits=np.zeros(8, dtype=np.int8))
        with pytest.raises(ValueError):
            frame.duration_s(0.0)

    def test_header_symbols_always_bpsk(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="16QAM", payload_bits=bits)
        header_symbols = frame.header_symbols()
        assert np.allclose(np.abs(header_symbols), 1.0)
        assert np.allclose(header_symbols.imag, 0.0, atol=1e-12)

    def test_payload_symbols_use_declared_scheme(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="QPSK", payload_bits=bits)
        symbols = frame.payload_symbols()
        assert symbols.size == (frame.payload_bits.size + 32) // 2
        assert np.allclose(np.abs(symbols), 1.0)

    def test_verify_payload_checks_crc(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        frame = Frame.build(tag_id=1, modulation="BPSK", payload_bits=bits)
        protected = append_crc32(frame.payload_bits)
        assert frame.verify_payload(protected)
        protected[3] ^= 1
        assert not frame.verify_payload(protected)

    def test_mismatched_header_length_raises(self):
        header = FrameHeader(tag_id=0, modulation="BPSK", payload_length_bits=16)
        with pytest.raises(ValueError):
            Frame(header=header, payload_bits=np.zeros(8, dtype=np.int8))
