"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coding import (
    append_crc16,
    append_crc32,
    block_deinterleave,
    block_interleave,
    check_crc16,
    check_crc32,
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from repro.core.framing import Frame, FrameHeader, bits_from_bytes, bytes_from_bits
from repro.core.modulation import available_schemes, get_scheme
from repro.dsp.signal import Signal
from repro.em.vanatta import VanAttaArray

bits_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=256).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


class TestCodingProperties:
    @given(bits=bits_arrays)
    def test_crc16_round_trip(self, bits):
        assert check_crc16(append_crc16(bits))

    @given(bits=bits_arrays)
    def test_crc32_round_trip(self, bits):
        assert check_crc32(append_crc32(bits))

    @given(bits=bits_arrays, position=st.integers(0, 1000))
    def test_crc16_detects_any_single_flip(self, bits, position):
        protected = append_crc16(bits)
        corrupted = protected.copy()
        corrupted[position % protected.size] ^= 1
        assert not check_crc16(corrupted)

    @given(
        bits=st.lists(st.integers(0, 1), min_size=4, max_size=64).filter(
            lambda xs: len(xs) % 4 == 0
        ).map(lambda xs: np.array(xs, dtype=np.int8))
    )
    def test_hamming_round_trip(self, bits):
        assert np.array_equal(hamming74_decode(hamming74_encode(bits)), bits)

    @given(
        bits=st.lists(st.integers(0, 1), min_size=4, max_size=32).filter(
            lambda xs: len(xs) % 4 == 0
        ).map(lambda xs: np.array(xs, dtype=np.int8)),
        error_position=st.integers(0, 10_000),
    )
    def test_hamming_corrects_one_flip_anywhere(self, bits, error_position):
        coded = hamming74_encode(bits)
        corrupted = coded.copy()
        corrupted[error_position % coded.size] ^= 1
        assert np.array_equal(hamming74_decode(corrupted), bits)

    @given(bits=bits_arrays, factor=st.integers(1, 7))
    def test_repetition_round_trip(self, bits, factor):
        assert np.array_equal(
            repetition_decode(repetition_encode(bits, factor), factor), bits
        )

    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
            lambda xs: np.array(xs, dtype=np.int8)
        ),
        depth=st.integers(1, 16),
    )
    def test_interleaver_round_trip(self, bits, depth):
        interleaved = block_interleave(bits, depth)
        restored = block_deinterleave(interleaved, depth, bits.size)
        assert np.array_equal(restored, bits)


class TestBytePackingProperties:
    @given(data=st.binary(max_size=64))
    def test_bytes_bits_round_trip(self, data):
        assert bytes_from_bits(bits_from_bytes(data)) == data


class TestModulationProperties:
    @given(
        scheme_name=st.sampled_from(available_schemes()),
        data=st.data(),
    )
    def test_modulate_demodulate_round_trip(self, scheme_name, data):
        scheme = get_scheme(scheme_name)
        k = scheme.bits_per_symbol
        num_symbols = data.draw(st.integers(1, 64))
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1),
                    min_size=num_symbols * k,
                    max_size=num_symbols * k,
                )
            ),
            dtype=np.int8,
        )
        symbols = scheme.constellation.modulate(bits)
        assert np.array_equal(scheme.constellation.demodulate(symbols), bits)

    @given(scheme_name=st.sampled_from(available_schemes()))
    def test_constellation_passivity(self, scheme_name):
        scheme = get_scheme(scheme_name)
        assert np.all(np.abs(scheme.constellation.points) <= 1.0 + 1e-12)

    @given(
        scheme_name=st.sampled_from(available_schemes()),
        snr_db=st.floats(-10.0, 40.0),
    )
    def test_theoretical_ber_in_valid_range(self, scheme_name, snr_db):
        ber = get_scheme(scheme_name).theoretical_ber(snr_db)
        assert 0.0 <= ber <= 0.5


class TestFrameProperties:
    @given(
        tag_id=st.integers(0, 255),
        modulation=st.sampled_from(available_schemes()),
        payload_len=st.integers(0, 300),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_frame_build_and_header_round_trip(
        self, tag_id, modulation, payload_len, data
    ):
        bits = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=payload_len, max_size=payload_len)
            ),
            dtype=np.int8,
        )
        frame = Frame.build(tag_id=tag_id, modulation=modulation, payload_bits=bits)
        parsed = FrameHeader.from_bits(frame.header.to_bits())
        assert parsed == frame.header
        assert np.array_equal(frame.payload_bits[:payload_len], bits)
        # padding always fills whole symbols
        k = frame.payload_scheme.bits_per_symbol
        assert (frame.payload_bits.size + 32) % k == 0


class TestSignalProperties:
    @given(
        amplitude=st.floats(1e-6, 1e3),
        frequency=st.floats(-4e5, 4e5),
        phase=st.floats(0, 2 * math.pi),
    )
    def test_tone_power_is_amplitude_squared(self, amplitude, frequency, phase):
        sig = Signal.tone(frequency, 1e6, 1e-4, amplitude=amplitude, phase=phase)
        assert sig.power() == pytest.approx(amplitude**2, rel=1e-9)

    @given(offset=st.floats(-4e5, 4e5))
    def test_frequency_shift_preserves_power(self, offset):
        sig = Signal.tone(1e4, 1e6, 1e-4)
        assert sig.frequency_shift(offset).power() == pytest.approx(
            sig.power(), rel=1e-9
        )

    @given(n_before=st.integers(0, 64), n_after=st.integers(0, 64))
    def test_pad_preserves_energy(self, n_before, n_after):
        sig = Signal.tone(1e4, 1e6, 1e-4)
        padded = sig.pad(n_before, n_after)
        assert padded.energy() == pytest.approx(sig.energy(), rel=1e-12)


class TestVanAttaProperties:
    @given(
        num_pairs=st.integers(1, 8),
        theta_deg=st.floats(-80.0, 80.0),
        line_phase=st.floats(0.0, 2 * math.pi),
        line_loss_db=st.floats(0.0, 6.0),
    )
    @settings(max_examples=60)
    def test_reflection_never_amplifies(
        self, num_pairs, theta_deg, line_phase, line_loss_db
    ):
        array = VanAttaArray(num_pairs=num_pairs, line_loss_db=line_loss_db)
        gamma = array.reflection_coefficient(math.radians(theta_deg), line_phase)
        assert abs(gamma) <= 1.0 + 1e-9

    @given(num_pairs=st.integers(1, 8), theta_deg=st.floats(-80.0, 80.0))
    @settings(max_examples=60)
    def test_monostatic_gain_bounded_by_ideal(self, num_pairs, theta_deg):
        array = VanAttaArray(num_pairs=num_pairs, line_loss_db=0.0)
        theta = math.radians(theta_deg)
        amp = float(array.element.amplitude(theta))
        ideal = (array.num_elements * amp * amp) ** 2
        assert array.monostatic_gain(theta) <= ideal * (1 + 1e-9)

    @given(
        num_pairs=st.integers(1, 6),
        theta_deg=st.floats(-60.0, 60.0),
        phase_a=st.floats(0.0, 2 * math.pi),
        phase_b=st.floats(0.0, 2 * math.pi),
    )
    @settings(max_examples=60)
    def test_line_phase_rotates_without_changing_magnitude(
        self, num_pairs, theta_deg, phase_a, phase_b
    ):
        array = VanAttaArray(num_pairs=num_pairs)
        theta = math.radians(theta_deg)
        a = array.monostatic_field(theta, phase_a)
        b = array.monostatic_field(theta, phase_b)
        assert abs(a) == pytest.approx(abs(b), rel=1e-9)
