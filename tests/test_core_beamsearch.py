"""Tests for repro.core.beamsearch."""

import numpy as np
import pytest

from repro.core.beamsearch import BeamSearchConfig, BeamSearcher
from repro.em.antenna import patch_element
from repro.em.array import UniformLinearArray


def _searcher(direction=20.0, snr=25.0, elements=16, noise=0.5, sector=120.0):
    config = BeamSearchConfig(
        ap_array=UniformLinearArray(num_elements=elements, element=patch_element(5.0)),
        sector_deg=sector,
    )
    return BeamSearcher(
        config,
        tag_direction_deg=direction,
        aligned_snr_db=snr,
        measurement_noise_db=noise,
    )


class TestConfig:
    def test_grid_covers_sector_twice_per_beamwidth(self):
        config = BeamSearchConfig()
        assert config.grid_points() >= 2 * config.sector_deg / config.beamwidth_deg()

    def test_rejects_bad_sector(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(sector_deg=0.0)

    def test_rejects_bad_slot(self):
        with pytest.raises(ValueError):
            BeamSearchConfig(probe_slot_duration_s=0.0)


class TestConstruction:
    def test_rejects_tag_outside_sector(self):
        with pytest.raises(ValueError):
            _searcher(direction=70.0, sector=120.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            _searcher(noise=-1.0)


class TestProbe:
    def test_aligned_probe_reads_reference_snr(self):
        searcher = _searcher(direction=0.0, noise=0.0)
        record = searcher.probe(0.0, np.random.default_rng(0))
        assert record.response_snr_db == pytest.approx(25.0, abs=0.01)

    def test_mispointed_probe_reads_less(self):
        searcher = _searcher(direction=0.0, noise=0.0)
        rng = np.random.default_rng(0)
        aligned = searcher.probe(0.0, rng).response_snr_db
        off = searcher.probe(10.0, rng).response_snr_db
        assert off < aligned - 10.0

    def test_short_array_wider_but_weaker(self):
        searcher = _searcher(direction=8.0, noise=0.0)
        rng = np.random.default_rng(0)
        full = searcher.probe(0.0, rng)  # 8 deg off with a narrow beam
        short = searcher.probe(0.0, rng, num_elements=4)  # wider beam
        # the short array is less sensitive to the 8-degree error...
        assert short.num_elements_used == 4
        # ...but pays aperture; with the tag well inside the wide beam
        # the wide probe actually wins here
        assert short.response_snr_db > full.response_snr_db

    def test_probe_rejects_bad_element_count(self):
        searcher = _searcher()
        with pytest.raises(ValueError):
            searcher.probe(0.0, np.random.default_rng(0), num_elements=99)


class TestExhaustiveSearch:
    @pytest.mark.parametrize("direction", [-50.0, -10.0, 0.0, 35.0, 55.0])
    def test_finds_tag_within_grid_spacing(self, direction):
        searcher = _searcher(direction=direction)
        result = searcher.exhaustive_search(rng=1)
        grid_spacing = searcher.config.sector_deg / (searcher.config.grid_points() - 1)
        assert result.found
        assert result.pointing_error_deg <= grid_spacing

    def test_probe_count_equals_grid(self):
        searcher = _searcher()
        result = searcher.exhaustive_search(rng=0)
        assert result.num_probes == searcher.config.grid_points()

    def test_pointing_loss_small(self):
        result = _searcher(direction=22.0).exhaustive_search(rng=2)
        assert result.pointing_loss_db < 3.0

    def test_weak_tag_not_found(self):
        searcher = _searcher(snr=-30.0)
        result = searcher.exhaustive_search(rng=0)
        assert not result.found


class TestHierarchicalSearch:
    @pytest.mark.parametrize("direction", [-40.0, 0.0, 23.0, 55.0])
    def test_finds_tag(self, direction):
        searcher = _searcher(direction=direction)
        result = searcher.hierarchical_search(rng=2)
        assert result.found
        assert result.pointing_error_deg < searcher.config.beamwidth_deg()

    def test_uses_fewer_probes_than_exhaustive(self):
        searcher = _searcher(direction=30.0)
        exhaustive = searcher.exhaustive_search(rng=1)
        hierarchical = searcher.hierarchical_search(rng=1)
        assert hierarchical.num_probes < exhaustive.num_probes

    def test_search_time_accounting(self):
        searcher = _searcher()
        result = searcher.hierarchical_search(rng=0)
        slot = searcher.config.probe_slot_duration_s
        assert result.search_time_s(slot) == pytest.approx(result.num_probes * slot)

    def test_deterministic_given_seed(self):
        searcher = _searcher(direction=17.0)
        a = searcher.hierarchical_search(rng=9)
        b = searcher.hierarchical_search(rng=9)
        assert a.best_steer_deg == b.best_steer_deg
        assert a.num_probes == b.num_probes


class TestPointingLoss:
    def test_zero_when_aligned(self):
        searcher = _searcher(direction=10.0)
        assert searcher.pointing_loss_db(10.0) == pytest.approx(0.0, abs=1e-9)

    def test_grows_with_error(self):
        searcher = _searcher(direction=10.0)
        losses = [searcher.pointing_loss_db(10.0 + e) for e in (0.0, 2.0, 4.0)]
        assert losses[0] < losses[1] < losses[2]
