"""Tests for repro.channel.multipath."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel, PathComponent, rician_channel
from repro.dsp.signal import Signal


class TestPathComponent:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PathComponent(delay_s=-1e-9, gain=1.0)


class TestMultipathChannel:
    def test_requires_at_least_one_path(self):
        with pytest.raises(ValueError):
            MultipathChannel(paths=())

    def test_los_channel_scales_only(self):
        channel = MultipathChannel.line_of_sight(gain=0.5j)
        sig = Signal(np.ones(16), 1e6)
        out = channel.apply(sig)
        assert np.allclose(out.samples, 0.5j)

    def test_output_length_preserved(self):
        channel = MultipathChannel(
            paths=(
                PathComponent(0.0, 1.0),
                PathComponent(5e-6, 0.3),
            )
        )
        sig = Signal(np.ones(100), 1e6)
        assert channel.apply(sig).num_samples == 100

    def test_two_path_integer_delay_superposition(self):
        fs = 1e6
        channel = MultipathChannel(
            paths=(PathComponent(0.0, 1.0), PathComponent(3e-6, 0.5))
        )
        impulse = Signal(np.concatenate([[1.0], np.zeros(15)]), fs)
        out = channel.apply(impulse)
        assert out.samples[0] == pytest.approx(1.0)
        assert out.samples[3] == pytest.approx(0.5)
        assert abs(out.samples[1]) < 1e-9

    def test_frequency_response_at_dc_sums_gains(self):
        channel = MultipathChannel(
            paths=(PathComponent(0.0, 0.7), PathComponent(1e-8, 0.3))
        )
        response = channel.frequency_response(np.array([0.0]))
        assert response[0] == pytest.approx(1.0, rel=1e-9)

    def test_frequency_response_has_fades(self):
        # Two equal paths 10 ns apart fade completely at 50 MHz offset.
        channel = MultipathChannel(
            paths=(PathComponent(0.0, 1.0), PathComponent(10e-9, 1.0))
        )
        response = channel.frequency_response(np.array([50e6]))
        assert abs(response[0]) < 1e-9

    def test_rms_delay_spread_single_path_zero(self):
        assert MultipathChannel.line_of_sight().rms_delay_spread() == 0.0

    def test_rms_delay_spread_two_equal_paths(self):
        channel = MultipathChannel(
            paths=(PathComponent(0.0, 1.0), PathComponent(20e-9, 1.0))
        )
        assert channel.rms_delay_spread() == pytest.approx(10e-9, rel=1e-9)


class TestRicianFactory:
    def test_total_power_normalised(self, rng):
        channel = rician_channel(10.0, 5, 30e-9, rng)
        total = sum(abs(p.gain) ** 2 for p in channel.paths)
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_k_factor_power_split(self, rng):
        k_db = 7.0
        channel = rician_channel(k_db, 4, 30e-9, rng)
        k = 10 ** (k_db / 10)
        los_power = abs(channel.paths[0].gain) ** 2
        assert los_power == pytest.approx(k / (k + 1), rel=1e-9)

    def test_los_path_has_zero_delay(self, rng):
        channel = rician_channel(5.0, 3, 30e-9, rng)
        assert channel.paths[0].delay_s == 0.0
        assert all(p.delay_s > 0 for p in channel.paths[1:])

    def test_zero_nlos_paths_gives_pure_los(self, rng):
        channel = rician_channel(10.0, 0, 30e-9, rng)
        assert len(channel.paths) == 1

    def test_deterministic_given_seed(self):
        a = rician_channel(6.0, 4, 30e-9, np.random.default_rng(11))
        b = rician_channel(6.0, 4, 30e-9, np.random.default_rng(11))
        assert a.paths == b.paths

    def test_rejects_negative_path_count(self, rng):
        with pytest.raises(ValueError):
            rician_channel(6.0, -1, 30e-9, rng)

    def test_los_gain_phase_preserved(self, rng):
        channel = rician_channel(20.0, 2, 30e-9, rng, los_gain=1j)
        assert np.angle(channel.paths[0].gain) == pytest.approx(np.pi / 2)
