"""Tests for repro.dsp.goertzel and repro.dsp.agc."""

import numpy as np
import pytest

from repro.dsp.agc import block_agc, feedback_agc
from repro.dsp.goertzel import detect_active_subcarriers, goertzel_bin, goertzel_power
from repro.dsp.signal import Signal


class TestGoertzelBin:
    def test_matches_direct_dft(self, rng):
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        for freq in (0.0, 0.125, -0.25, 0.33):
            direct = np.sum(x * np.exp(-2j * np.pi * freq * np.arange(128)))
            assert goertzel_bin(x, freq) == pytest.approx(direct, abs=1e-6)

    def test_empty_input(self):
        assert goertzel_bin(np.zeros(0), 0.1) == 0.0

    def test_rejects_out_of_range_frequency(self):
        with pytest.raises(ValueError):
            goertzel_bin(np.ones(4), 0.6)


class TestGoertzelPower:
    def test_unit_tone_gives_one(self):
        sig = Signal.tone(10e3, 1e6, 1.024e-3)
        assert goertzel_power(sig, 10e3) == pytest.approx(1.0, abs=1e-3)

    def test_off_frequency_low(self):
        sig = Signal.tone(10e3, 1e6, 1.024e-3)
        assert goertzel_power(sig, 200e3) < 1e-4

    def test_rejects_above_nyquist(self):
        sig = Signal.tone(1e3, 1e6, 1e-4)
        with pytest.raises(ValueError):
            goertzel_power(sig, 600e3)

    def test_empty_signal(self):
        assert goertzel_power(Signal.zeros(0, 1e6), 1e3) == 0.0


class TestDetectActiveSubcarriers:
    def test_finds_the_active_ones(self):
        sig = Signal.tone(50e3, 1e6, 2e-3) + Signal.tone(150e3, 1e6, 2e-3)
        candidates = [50e3, 100e3, 150e3, 200e3]
        active = detect_active_subcarriers(sig, candidates)
        assert set(active) == {50e3, 150e3}

    def test_empty_candidates(self):
        sig = Signal.tone(1e3, 1e6, 1e-4)
        assert detect_active_subcarriers(sig, []) == []

    def test_rejects_bad_threshold(self):
        sig = Signal.tone(1e3, 1e6, 1e-4)
        with pytest.raises(ValueError):
            detect_active_subcarriers(sig, [1e3], threshold_ratio=1.0)

    def test_robust_in_noise(self, rng):
        sig = Signal.tone(100e3, 1e6, 4e-3)
        noisy = Signal(
            sig.samples
            + 0.05 * (rng.standard_normal(sig.num_samples)
                      + 1j * rng.standard_normal(sig.num_samples)),
            1e6,
        )
        active = detect_active_subcarriers(noisy, [50e3, 100e3, 200e3, 300e3])
        assert active == [100e3]


class TestBlockAgc:
    def test_reaches_target_rms(self):
        sig = Signal(1e-4 * np.ones(100), 1e6)
        out, gain_db = block_agc(sig, target_rms=1.0)
        assert out.rms() == pytest.approx(1.0)
        assert gain_db == pytest.approx(80.0)

    def test_gain_capped(self):
        sig = Signal(1e-9 * np.ones(100), 1e6)
        out, gain_db = block_agc(sig, target_rms=1.0, max_gain_db=40.0)
        assert gain_db == pytest.approx(40.0)
        assert out.rms() < 1.0

    def test_silence_unchanged(self):
        out, gain_db = block_agc(Signal.zeros(10, 1e6))
        assert gain_db == 0.0
        assert out.power() == 0.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            block_agc(Signal.zeros(4, 1e6), target_rms=0.0)


class TestFeedbackAgc:
    def test_levels_a_step(self):
        # amplitude jumps 20x mid-stream; the loop re-levels it
        samples = np.concatenate([0.05 * np.ones(5000), 1.0 * np.ones(5000)])
        sig = Signal(samples, 1e6)
        out = feedback_agc(sig, target_rms=1.0, time_constant_s=50e-6)
        settled_a = np.abs(out.samples[4000:5000]).mean()
        settled_b = np.abs(out.samples[9000:]).mean()
        assert settled_a == pytest.approx(1.0, rel=0.1)
        assert settled_b == pytest.approx(1.0, rel=0.1)

    def test_preserves_fast_modulation(self):
        # symbol amplitude structure faster than the loop must survive
        symbols = np.tile([1.0, 0.4], 500)
        sig = Signal.from_symbols(symbols, 1e6, 4)
        out = feedback_agc(sig, target_rms=1.0, time_constant_s=100e-6)
        tail = np.abs(out.samples[-800:])
        ratio = tail.max() / tail.min()
        assert ratio == pytest.approx(2.5, rel=0.2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            feedback_agc(Signal.zeros(4, 1e6), target_rms=-1.0)
        with pytest.raises(ValueError):
            feedback_agc(Signal.zeros(4, 1e6), time_constant_s=0.0)
