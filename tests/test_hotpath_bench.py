"""Loose speed assertions on the vectorized hot-path kernels.

The point is regression *detection*, not precise benchmarking: if a
future change quietly reroutes the vectorized Viterbi or the batched
frame-chain TX kernel back through the Python reference loops, the
measured speedup collapses from >20x to ~1x and these asserts catch it.
Thresholds sit far below the typically measured ratios (see
``BENCH_hotpaths.json``) so scheduler noise cannot flake the suite, and
the whole module can be skipped on constrained runners via
``REPRO_SKIP_BENCH=1``.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.profiling import run_hotpath_benchmarks

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_BENCH") == "1",
    reason="REPRO_SKIP_BENCH=1: constrained runner, skipping timing asserts",
)


@pytest.fixture(scope="module")
def report():
    return run_hotpath_benchmarks(quick=True)


def test_all_kernels_present(report):
    names = set(report.by_name())
    assert {
        "viterbi_decode",
        "frame_chain_tx",
        "link_end_to_end",
        "multipath_apply",
        "link_rician_end_to_end",
        "link_end_to_end_fused",
        "link_rician_end_to_end_fused",
        "link_fast_tier",
        "sweep_adaptive_vs_uniform",
        "netsim_event_engine",
        "vanatta_pattern",
    } <= names


def test_viterbi_vectorized_at_least_5x(report):
    bench = report.by_name()["viterbi_decode"]
    # typically >20x; 5x is the acceptance floor
    assert bench.speedup >= 5.0, f"viterbi speedup collapsed: {bench.speedup:.1f}x"


def test_frame_chain_tx_at_least_5x(report):
    bench = report.by_name()["frame_chain_tx"]
    # typically >40x; 5x is the acceptance floor
    assert bench.speedup >= 5.0, f"frame TX speedup collapsed: {bench.speedup:.1f}x"


def test_netsim_sharded_coordination_overhead_bounded(report):
    bench = report.by_name()["netsim_event_engine"]
    # single-process sharding trades plan+replay overhead against the
    # hot-path savings and lands near 1x; 0.3x is the floor that
    # catches a coordination-overhead blowup without flaking on noise
    assert bench.speedup >= 0.3, (
        f"sharded engine overhead blew up: {bench.speedup:.2f}x"
    )


def test_vanatta_broadcast_faster(report):
    bench = report.by_name()["vanatta_pattern"]
    # typically >60x; assert well under that
    assert bench.speedup >= 5.0, f"vanatta speedup collapsed: {bench.speedup:.1f}x"


def test_link_end_to_end_not_slower(report):
    bench = report.by_name()["link_end_to_end"]
    # Amdahl-bounded by shared bit-exact per-frame stages; just require
    # the batch never LOSES to the reference.
    assert bench.speedup >= 1.0, f"batched chain slower: {bench.speedup:.1f}x"


def test_multipath_apply_faster(report):
    bench = report.by_name()["multipath_apply"]
    # The per-shape delay plan (exp phase ramps hoisted out of the
    # per-call path) raised this kernel from ~1.2x to ~1.4x; the floor
    # moves up with it.  1.1x sits below quick-mode noise but catches a
    # regression back to per-call ramp rebuilds.
    assert bench.speedup >= 1.1, f"multipath apply barely faster: {bench.speedup:.1f}x"


def test_link_end_to_end_fused_not_slower(report):
    bench = report.by_name()["link_end_to_end_fused"]
    # Whole-budget fused execution is bit-exactness-bounded like the
    # chunked batch (same per-frame kernels, same RNG order); its win
    # over the *serial* loop is typically ~2.5x.  The floor only
    # guards against the fused path regressing below the serial chain.
    assert bench.speedup >= 1.2, f"fused chain slower: {bench.speedup:.1f}x"


def test_link_rician_end_to_end_fused_not_slower(report):
    bench = report.by_name()["link_rician_end_to_end_fused"]
    # Fading variant of the fused whole-budget path; typically ~1.6-1.9x
    # over serial (bit-exactness-bounded: identical FFT delay operator
    # per frame on both sides).
    assert bench.speedup >= 1.1, f"fused fading chain slower: {bench.speedup:.1f}x"


def test_link_fast_tier_at_least_2x(report):
    bench = report.by_name()["link_fast_tier"]
    # The statistical tier drops bit-exactness (complex64 chain, FFT
    # sync, quantized Rician taps) and typically lands 5.5-6.7x over the
    # serial reference even without numba; 2.5x is the acceptance floor
    # that catches the tier silently rerouting through the exact chain.
    assert bench.speedup >= 2.5, f"fast tier collapsed: {bench.speedup:.1f}x"


def test_link_rician_end_to_end_batches_faster(report):
    bench = report.by_name()["link_rician_end_to_end"]
    # The fading chain used to *fall back to the serial loop* (1.0x by
    # construction); the batched kernels typically land 1.5-2x on a
    # single CPU.  The ratio is bit-exactness-bounded — both sides pay
    # the identical FFT delay operator and phase ramps per frame — so
    # the floor sits at a loose 1.2x, well below typical, far above the
    # old fallback.
    assert bench.speedup >= 1.2, (
        f"fading chain no longer batches faster: {bench.speedup:.1f}x"
    )


def test_sweep_adaptive_vs_uniform_faster(report):
    bench = report.by_name()["sweep_adaptive_vs_uniform"]
    # Typically ~1.5-2x on a 1-CPU runner (vectorized backend +
    # simulator memoisation; the adaptive schedule's load-balancing win
    # needs multiple worker slots).  Floor at a loose 1.1x.
    assert bench.speedup >= 1.1, (
        f"adaptive+vectorized sweep not faster: {bench.speedup:.1f}x"
    )
