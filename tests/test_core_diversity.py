"""Tests for repro.core.diversity."""

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.diversity import mrc_combine, simulate_diversity_link
from repro.core.link import LinkConfig


class TestMrcCombine:
    def test_single_branch_is_equalisation(self, rng):
        symbols = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        gain = 0.5 * np.exp(1j * 0.8)
        combined = mrc_combine([gain * symbols], [gain])
        assert np.allclose(combined, symbols)

    def test_two_equal_branches_average_noise(self, rng):
        reference = (2 * rng.integers(0, 2, 2000) - 1).astype(complex)
        noise_a = 0.3 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        noise_b = 0.3 * (rng.standard_normal(2000) + 1j * rng.standard_normal(2000))
        combined = mrc_combine(
            [reference + noise_a, reference + noise_b], [1.0 + 0j, 1.0 + 0j]
        )
        residual = combined - reference
        single_noise_power = np.mean(np.abs(noise_a) ** 2)
        assert np.mean(np.abs(residual) ** 2) == pytest.approx(
            single_noise_power / 2, rel=0.1
        )

    def test_weights_favour_strong_branch(self, rng):
        reference = (2 * rng.integers(0, 2, 500) - 1).astype(complex)
        strong = 1.0 * reference + 0.01 * rng.standard_normal(500)
        weak = 0.01 * reference + 0.3 * rng.standard_normal(500)
        combined = mrc_combine([strong, weak], [1.0 + 0j, 0.01 + 0j])
        errors = np.count_nonzero(np.sign(combined.real) != reference.real)
        assert errors == 0

    def test_phase_aligned_before_summing(self, rng):
        reference = (2 * rng.integers(0, 2, 100) - 1).astype(complex)
        g1 = np.exp(1j * 1.0)
        g2 = np.exp(1j * -2.0)
        combined = mrc_combine([g1 * reference, g2 * reference], [g1, g2])
        assert np.allclose(combined, reference, atol=1e-9)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            mrc_combine([], [])
        with pytest.raises(ValueError):
            mrc_combine([np.ones(4, dtype=complex)], [1.0, 2.0])
        with pytest.raises(ValueError):
            mrc_combine([np.ones(4, dtype=complex)], [0.0 + 0j])


class TestSimulateDiversityLink:
    def test_two_branches_gain_about_3db(self):
        config = LinkConfig(distance_m=6.0, environment=Environment.typical_office())
        gains = []
        for seed in range(4):
            result = simulate_diversity_link(config, num_branches=2, rng=seed)
            gain = result.combining_gain_db()
            assert gain is not None
            gains.append(gain)
        assert np.mean(gains) == pytest.approx(3.0, abs=0.7)

    def test_four_branches_about_6db(self):
        config = LinkConfig(distance_m=6.0, environment=Environment.anechoic())
        result = simulate_diversity_link(config, num_branches=4, rng=1)
        assert result.combining_gain_db() == pytest.approx(6.0, abs=1.2)

    def test_combined_decodes_where_needed(self):
        config = LinkConfig(distance_m=6.0)
        result = simulate_diversity_link(config, num_branches=2, rng=2)
        assert result.combined.success
        assert result.combined_ber == 0.0

    def test_extends_range_past_single_branch(self):
        # at a distance where one branch sits near the cliff, two
        # branches pull the frame through
        config = LinkConfig(distance_m=14.5)
        single_successes = 0
        combined_successes = 0
        for seed in range(6):
            result = simulate_diversity_link(config, num_branches=2, rng=seed)
            combined_successes += int(result.combined.success)
            single_successes += int(result.per_branch[0].success)
        assert combined_successes > single_successes

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            simulate_diversity_link(LinkConfig(), num_branches=0)

    def test_deterministic_given_seed(self):
        config = LinkConfig(distance_m=5.0)
        a = simulate_diversity_link(config, rng=7)
        b = simulate_diversity_link(config, rng=7)
        assert a.combined_ber == b.combined_ber
        assert a.combined.snr_estimate_db == b.combined.snr_estimate_db

    def test_all_branches_lost_reports_failure(self):
        config = LinkConfig(distance_m=300.0)
        result = simulate_diversity_link(config, num_branches=2, rng=0)
        assert not result.combined.detected
        assert result.combined_ber == 0.5
