"""Tests for repro.em.antenna."""

import math

import numpy as np
import pytest

from repro.em.antenna import AntennaElement, horn_antenna, isotropic_element, patch_element


class TestIsotropic:
    def test_gain_is_unity_everywhere(self):
        el = isotropic_element()
        angles = np.linspace(-np.pi, np.pi, 17)
        assert np.allclose(el.gain(angles), 1.0)

    def test_beamwidth_is_full_circle(self):
        assert isotropic_element().half_power_beamwidth_deg() == 360.0


class TestPatch:
    def test_boresight_gain_matches_spec(self):
        el = patch_element(5.0)
        assert float(el.gain_db(0.0)) == pytest.approx(5.0, abs=1e-9)

    def test_gain_monotonically_decreases_off_boresight(self):
        el = patch_element(5.0)
        angles = np.radians(np.linspace(0, 85, 18))
        gains = el.gain(angles)
        assert np.all(np.diff(gains) < 0)

    def test_zero_gain_behind(self):
        el = patch_element(5.0)
        assert float(el.gain(np.pi)) == 0.0
        assert float(el.gain(np.radians(91))) == 0.0

    def test_pattern_integrates_to_isotropic_power(self):
        # Directivity consistency: average of G over the sphere = 1.
        el = patch_element(5.0)
        theta = np.linspace(0, np.pi, 20_000)
        gains = el.gain(theta)
        average = np.trapezoid(gains * np.sin(theta), theta) / 2.0
        assert average == pytest.approx(1.0, rel=0.01)

    def test_beamwidth_reasonable_for_5dbi(self):
        # cos^2q model: a 5 dBi element is a broad radiator (~145 deg)
        bw = patch_element(5.0).half_power_beamwidth_deg()
        assert 60 < bw < 160

    def test_amplitude_is_sqrt_gain(self):
        el = patch_element(5.0)
        theta = 0.3
        assert float(el.amplitude(theta)) == pytest.approx(
            math.sqrt(float(el.gain(theta)))
        )


class TestHorn:
    def test_default_20dbi(self):
        assert horn_antenna().gain_dbi == 20.0

    def test_narrower_than_patch(self):
        assert (
            horn_antenna(20.0).half_power_beamwidth_deg()
            < patch_element(5.0).half_power_beamwidth_deg()
        )


class TestValidation:
    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            AntennaElement(gain_dbi=-3.0)

    def test_gain_db_is_negative_infinity_behind(self):
        el = patch_element(5.0)
        assert float(el.gain_db(np.pi)) == -math.inf
