"""Tests for repro.rf.noise."""

import math

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.rf.noise import (
    PhaseNoiseModel,
    add_awgn,
    awgn_for_snr,
    thermal_noise_power,
    thermal_noise_power_dbm,
)


class TestThermalNoise:
    def test_ktb_at_1hz(self):
        assert thermal_noise_power(1.0) == pytest.approx(4.0e-21, rel=0.01)

    def test_dbm_at_1mhz(self):
        # -174 + 60 = -114 dBm
        assert thermal_noise_power_dbm(1e6) == pytest.approx(-114.0, abs=0.1)

    def test_noise_figure_added(self):
        assert thermal_noise_power_dbm(1e6, noise_figure_db=6.0) == pytest.approx(
            -108.0, abs=0.1
        )

    @pytest.mark.parametrize("bw", [0.0, -1.0])
    def test_rejects_bad_bandwidth(self, bw):
        with pytest.raises(ValueError):
            thermal_noise_power(bw)

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            thermal_noise_power(1e6, temperature_k=0.0)


class TestAddAwgn:
    def test_noise_power_matches_request(self, rng):
        sig = Signal.zeros(500_000, 1e6)
        noisy = add_awgn(sig, 0.25, rng)
        assert noisy.power() == pytest.approx(0.25, rel=0.02)

    def test_zero_noise_is_identity_copy(self, rng):
        sig = Signal(np.ones(10), 1e6)
        out = add_awgn(sig, 0.0, rng)
        assert np.array_equal(out.samples, sig.samples)
        assert out.samples is not sig.samples

    def test_noise_is_circular(self, rng):
        noisy = add_awgn(Signal.zeros(500_000, 1e6), 1.0, rng)
        i_power = np.mean(noisy.samples.real**2)
        q_power = np.mean(noisy.samples.imag**2)
        assert i_power == pytest.approx(q_power, rel=0.05)
        correlation = np.mean(noisy.samples.real * noisy.samples.imag)
        assert abs(correlation) < 0.01

    def test_rejects_negative_power(self, rng):
        with pytest.raises(ValueError):
            add_awgn(Signal.zeros(4, 1e6), -1.0, rng)

    def test_deterministic_given_seed(self):
        sig = Signal.zeros(100, 1e6)
        a = add_awgn(sig, 1.0, np.random.default_rng(7))
        b = add_awgn(sig, 1.0, np.random.default_rng(7))
        assert np.array_equal(a.samples, b.samples)


class TestAwgnForSnr:
    def test_target_snr_achieved(self, rng):
        sig = Signal(np.ones(500_000), 1e6)
        noisy = awgn_for_snr(sig, 10.0, rng)
        noise = noisy.samples - sig.samples
        measured = 10 * math.log10(1.0 / np.mean(np.abs(noise) ** 2))
        assert measured == pytest.approx(10.0, abs=0.2)

    def test_rejects_zero_power_signal(self, rng):
        with pytest.raises(ValueError):
            awgn_for_snr(Signal.zeros(10, 1e6), 10.0, rng)


class TestPhaseNoise:
    def test_diffusion_rate_positive(self):
        model = PhaseNoiseModel(level_dbc_hz=-90.0, reference_offset_hz=100e3)
        assert model.diffusion_rate() > 0

    def test_phase_variance_grows_linearly(self, rng):
        model = PhaseNoiseModel(level_dbc_hz=-80.0)
        fs = 1e6
        trials = np.array(
            [
                model.sample_phase(10_000, fs, np.random.default_rng(s))[-1]
                for s in range(400)
            ]
        )
        expected_var = model.diffusion_rate() * 10_000 / fs
        assert np.var(trials) == pytest.approx(expected_var, rel=0.3)

    def test_apply_preserves_magnitude(self, rng):
        model = PhaseNoiseModel()
        sig = Signal(np.ones(1000), 1e6)
        out = model.apply(sig, rng)
        assert np.allclose(np.abs(out.samples), 1.0)

    def test_residual_zero_delay_is_identity(self, rng):
        model = PhaseNoiseModel()
        sig = Signal(np.ones(100), 1e6)
        out = model.residual_after_delay(sig, 0.0, rng)
        assert np.array_equal(out.samples, sig.samples)

    def test_residual_small_for_short_delay(self, rng):
        # Self-coherent backscatter: a 53 ns round trip leaves negligible
        # residual phase noise - the property that lets mmTag use a
        # commodity LO.
        model = PhaseNoiseModel(level_dbc_hz=-90.0)
        sig = Signal(np.ones(50_000), 1e8)
        out = model.residual_after_delay(sig, 53e-9, rng)
        phase_error = np.angle(out.samples)
        assert np.std(phase_error) < 1e-2

    def test_residual_grows_with_delay(self, rng):
        model = PhaseNoiseModel(level_dbc_hz=-70.0)
        sig = Signal(np.ones(20_000), 1e8)
        short = model.residual_after_delay(sig, 1e-8, np.random.default_rng(3))
        long = model.residual_after_delay(sig, 1e-5, np.random.default_rng(3))
        assert np.std(np.angle(long.samples)) > np.std(np.angle(short.samples))

    def test_rejects_negative_delay(self, rng):
        with pytest.raises(ValueError):
            PhaseNoiseModel().residual_after_delay(Signal.zeros(4, 1e6), -1.0, rng)
