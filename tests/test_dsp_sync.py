"""Tests for repro.dsp.sync."""

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.dsp.sync import (
    barker_sequence,
    correlate_preamble,
    detect_frame_start,
    estimate_symbol_timing,
)


class TestBarker:
    @pytest.mark.parametrize("length", [2, 3, 4, 5, 7, 11, 13])
    def test_known_lengths_available(self, length):
        code = barker_sequence(length)
        assert code.size == length
        assert set(np.unique(code)) <= {-1.0, 1.0}

    @pytest.mark.parametrize("length", [13, 11, 7])
    def test_autocorrelation_sidelobes_at_most_one(self, length):
        code = barker_sequence(length)
        corr = np.correlate(code, code, mode="full")
        centre = corr.size // 2
        sidelobes = np.abs(np.delete(corr, centre))
        assert np.max(sidelobes) <= 1.0 + 1e-9
        assert corr[centre] == pytest.approx(length)

    @pytest.mark.parametrize("length", [1, 6, 14, 0])
    def test_invalid_length_raises(self, length):
        with pytest.raises(ValueError):
            barker_sequence(length)


def _burst(preamble, sps, offset, total, amplitude=1.0, phase=0.0):
    template = np.repeat(preamble.astype(complex), sps) * amplitude * np.exp(1j * phase)
    samples = np.zeros(total, dtype=complex)
    samples[offset : offset + template.size] = template
    return Signal(samples, 1e6)


class TestCorrelatePreamble:
    def test_peak_at_burst_offset(self):
        preamble = barker_sequence(13)
        sig = _burst(preamble, 4, offset=100, total=400)
        corr = correlate_preamble(sig, preamble, 4)
        assert int(np.argmax(corr)) == 100

    def test_peak_invariant_to_carrier_phase(self):
        preamble = barker_sequence(13)
        sig = _burst(preamble, 4, offset=77, total=300, phase=2.1)
        corr = correlate_preamble(sig, preamble, 4)
        assert int(np.argmax(corr)) == 77

    def test_rejects_zero_sps(self):
        with pytest.raises(ValueError):
            correlate_preamble(Signal.zeros(10, 1e6), barker_sequence(7), 0)


class TestDetectFrameStart:
    def test_detects_clean_burst(self):
        preamble = barker_sequence(13)
        sig = _burst(preamble, 8, offset=200, total=1000)
        assert detect_frame_start(sig, preamble, 8) == 200

    def test_detects_in_noise(self, rng):
        preamble = barker_sequence(13)
        sig = _burst(preamble, 8, offset=300, total=1200, amplitude=1.0)
        noisy = Signal(
            sig.samples
            + 0.2 * (rng.standard_normal(1200) + 1j * rng.standard_normal(1200)),
            1e6,
        )
        assert detect_frame_start(noisy, preamble, 8) == 300

    def test_returns_none_for_pure_noise(self, rng):
        noise = Signal(
            rng.standard_normal(2000) + 1j * rng.standard_normal(2000), 1e6
        )
        preamble = barker_sequence(13)
        assert detect_frame_start(noise, preamble, 8, threshold_ratio=6.0) is None

    def test_returns_none_for_empty_signal(self):
        assert detect_frame_start(Signal.zeros(0, 1e6), barker_sequence(7), 4) is None


class TestSymbolTiming:
    def test_finds_correct_offset(self):
        # Symbols with energy only in their hold region; offset by 3
        sps = 8
        symbols = np.ones(50, dtype=complex)
        samples = np.zeros(3 + 50 * sps, dtype=complex)
        samples[3 :: 1] = 0  # noqa: E203 - keep zeros
        template = np.repeat(symbols, sps)
        samples[3 : 3 + template.size] = template
        # zero out one sample per symbol except the hold to bias timing
        sig = Signal(samples, 1e6)
        offset = estimate_symbol_timing(sig, sps)
        assert 0 <= offset < sps

    def test_prefers_high_energy_phase(self):
        sps = 4
        # energy only at offset-2 samples of each symbol
        samples = np.zeros(400, dtype=complex)
        samples[2::sps] = 1.0
        sig = Signal(samples, 1e6)
        assert estimate_symbol_timing(sig, sps) == 2

    def test_empty_signal_returns_zero(self):
        assert estimate_symbol_timing(Signal.zeros(0, 1e6), 4) == 0

    def test_rejects_zero_sps(self):
        with pytest.raises(ValueError):
            estimate_symbol_timing(Signal.zeros(10, 1e6), 0)
