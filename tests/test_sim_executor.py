"""Determinism / equivalence properties of the sweep execution engine.

The engine's headline guarantee: for a fixed root seed, the ``process``
backend, the ``serial`` reference backend, and cache-hit replay all
return **byte-identical** results — across sweep shapes, chunk sizes,
and worker counts.  These tests pin that contract, plus the stable
cache-key machinery it leans on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.link import LinkConfig
from repro.core.tag import TagConfig
from repro.sim.cache import (
    MISS,
    CacheKeyError,
    ResultCache,
    canonicalize,
    code_version,
    stable_hash,
)
from repro.sim.executor import (
    BerSweepTask,
    FunctionTask,
    PointRecord,
    SweepExecutor,
    run_sweep,
)
from repro.sim.monte_carlo import BerEstimate, estimate_link_ber
from repro.sim.sweep import sweep_1d


def _noisy_config() -> LinkConfig:
    """An office link whose far points actually accumulate bit errors."""
    return LinkConfig(
        tag=TagConfig(symbol_rate_hz=10e6, samples_per_symbol=4),
        environment=Environment.typical_office(),
    )


def _task(**overrides) -> BerSweepTask:
    kwargs = dict(
        config=_noisy_config(),
        param="distance_m",
        target_errors=8,
        max_bits=9_000,
        bits_per_frame=3_000,
    )
    kwargs.update(overrides)
    return BerSweepTask(**kwargs)


#: Mix of clean (low BER) and noisy (erroring) operating points.
_VALUES = [2.0, 9.0, 13.0, 17.0]


def _metric_squared(value: float) -> float:
    """Module-level so the process backend can pickle it."""
    return value * value


class TestSeedSpawnDeterminism:
    def test_same_seed_same_results(self):
        a = SweepExecutor("serial").run(_VALUES, _task(), seed=3)
        b = SweepExecutor("serial").run(_VALUES, _task(), seed=3)
        assert a.points == b.points
        assert pickle.dumps(a.points) == pickle.dumps(b.points)

    def test_different_seed_different_results(self):
        a = SweepExecutor("serial").run(_VALUES, _task(), seed=3)
        b = SweepExecutor("serial").run(_VALUES, _task(), seed=4)
        # the noisy far points must see different error patterns
        assert a.points != b.points

    def test_prefix_stability_across_sweep_shapes(self):
        """Child seeds depend only on (root, index): prefixes agree."""
        short = SweepExecutor("serial").run(_VALUES[:2], _task(), seed=3)
        full = SweepExecutor("serial").run(_VALUES, _task(), seed=3)
        assert short.points == full.points[:2]

    def test_single_point_sweep_matches_spawned_child(self):
        report = SweepExecutor("serial").run([13.0], _task(), seed=3)
        child = np.random.SeedSequence(3).spawn(1)[0]
        direct = estimate_link_ber(
            _task().config_for(13.0),
            target_errors=8,
            max_bits=9_000,
            bits_per_frame=3_000,
            seed=child,
        )
        assert report.points[0].metric == direct

    def test_estimates_carry_statistical_weight(self):
        report = SweepExecutor("serial").run(_VALUES, _task(), seed=3)
        for point in report.points:
            estimate = point.metric
            assert isinstance(estimate, BerEstimate)
            assert estimate.bits_tested > 0
            assert estimate.target_errors == 8


class TestBackendEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_matches_serial_any_worker_count(self, workers):
        serial = SweepExecutor("serial").run(_VALUES, _task(), seed=7)
        process = SweepExecutor("process", max_workers=workers).run(
            _VALUES, _task(), seed=7
        )
        assert process.points == serial.points
        assert pickle.dumps(process.points) == pickle.dumps(serial.points)

    def test_process_function_task_matches_serial(self):
        task = FunctionTask(_metric_squared)
        serial = SweepExecutor("serial").run([1.0, 2.0, 3.0], task)
        process = SweepExecutor("process", max_workers=2).run([1.0, 2.0, 3.0], task)
        assert serial.points == process.points
        assert serial.metrics == [1.0, 4.0, 9.0]

    def test_report_is_index_ordered_regardless_of_completion(self):
        report = SweepExecutor("process", max_workers=2).run(
            _VALUES, _task(), seed=7
        )
        assert [p.value for p in report.points] == _VALUES
        assert [r.index for r in report.records] == sorted(
            r.index for r in report.records
        )


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_frames", [2, 3, 7])
    def test_estimate_invariant_to_chunk_size(self, chunk_frames):
        config = _noisy_config().with_distance(13.0)
        reference = estimate_link_ber(
            config, target_errors=8, max_bits=9_000, bits_per_frame=3_000, seed=5
        )
        chunked = estimate_link_ber(
            config,
            target_errors=8,
            max_bits=9_000,
            bits_per_frame=3_000,
            seed=5,
            chunk_frames=chunk_frames,
        )
        assert chunked == reference
        assert pickle.dumps(chunked) == pickle.dumps(reference)

    @pytest.mark.parametrize("chunk_frames", [1, 4])
    def test_sweep_invariant_to_task_chunk_size(self, chunk_frames):
        reference = SweepExecutor("serial").run(_VALUES, _task(), seed=11)
        chunked = SweepExecutor("serial").run(
            _VALUES, _task(chunk_frames=chunk_frames), seed=11
        )
        assert chunked.points == reference.points

    def test_progress_hook_sees_monotone_counters(self):
        seen = []
        estimate_link_ber(
            _noisy_config().with_distance(15.0),
            target_errors=1_000,
            max_bits=9_000,
            bits_per_frame=3_000,
            seed=5,
            chunk_frames=2,
            progress=lambda frames, bits, errors: seen.append((frames, bits, errors)),
        )
        assert seen, "progress hook never fired"
        assert seen == sorted(seen)
        assert seen[-1][1] <= 9_000

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            estimate_link_ber(_noisy_config(), chunk_frames=0)


class TestCacheReplay:
    def test_cache_hit_replay_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        warm = SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        assert cold.cache_misses == len(_VALUES) and cold.cache_hits == 0
        assert warm.cache_hits == len(_VALUES) and warm.cache_misses == 0
        assert warm.points == cold.points
        assert pickle.dumps(warm.points) == pickle.dumps(cold.points)

    def test_three_way_agreement_serial_process_cached(self, tmp_path):
        serial = SweepExecutor("serial").run(_VALUES, _task(), seed=7)
        process = SweepExecutor("process", max_workers=2).run(
            _VALUES, _task(), seed=7
        )
        cache = ResultCache(tmp_path)
        SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        cached = SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        blobs = {
            pickle.dumps(report.points) for report in (serial, process, cached)
        }
        assert len(blobs) == 1

    def test_different_seed_does_not_hit_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        other = SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=8)
        assert other.cache_hits == 0

    def test_different_config_does_not_hit_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        other = SweepExecutor("serial", cache=cache).run(
            _VALUES, _task(target_errors=9), seed=7
        )
        assert other.cache_hits == 0

    def test_invalidation_forces_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        assert len(cache) == len(_VALUES)
        removed = cache.invalidate()
        assert removed == len(_VALUES)
        assert len(cache) == 0
        again = SweepExecutor("serial", cache=cache).run(_VALUES, _task(), seed=7)
        assert again.cache_hits == 0 and again.cache_misses == len(_VALUES)
        assert cache.stats.invalidations == removed

    def test_single_key_invalidation(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(probe=1)
        cache.put(key, {"x": 1})
        assert key in cache
        assert cache.invalidate(key) == 1
        assert key not in cache
        assert cache.get(key) is MISS

    def test_none_is_a_cacheable_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(probe="none")
        cache.put(key, None)
        assert cache.get(key) is None

    def test_version_partitions_the_keyspace(self, tmp_path):
        old = ResultCache(tmp_path, version="code-v1")
        new = ResultCache(tmp_path, version="code-v2")
        old.put(old.key_for(probe=1), "stale")
        assert new.get(new.key_for(probe=1)) is MISS

    def test_default_version_is_code_digest(self, tmp_path):
        assert ResultCache(tmp_path).version == code_version()
        assert len(code_version()) == 64

    def test_uncacheable_function_task_skips_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor("serial", cache=cache)
        report = executor.run([1.0, 2.0], FunctionTask(lambda v: v))
        assert report.metrics == [1.0, 2.0]
        assert cache.stats.lookups == 0 and len(cache) == 0

    def test_opted_in_function_task_is_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = FunctionTask(_metric_squared, cache_token="squared-v1")
        executor = SweepExecutor("serial", cache=cache)
        executor.run([3.0], task)
        warm = executor.run([3.0], task)
        assert warm.cache_hits == 1
        assert warm.metrics == [9.0]

    def test_get_or_compute(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(probe="goc")
        calls = []
        value = cache.get_or_compute(key, lambda: calls.append(1) or 42)
        again = cache.get_or_compute(key, lambda: calls.append(1) or 43)
        assert value == again == 42
        assert len(calls) == 1


class TestStableHash:
    def test_deterministic_for_link_config(self):
        a = stable_hash(_noisy_config())
        b = stable_hash(_noisy_config())
        assert a == b and len(a) == 64

    def test_sensitive_to_any_field(self):
        base = stable_hash(_noisy_config())
        moved = stable_hash(_noisy_config().with_distance(5.0))
        remod = stable_hash(_noisy_config().with_modulation("BPSK"))
        assert len({base, moved, remod}) == 3

    def test_float_hashing_is_byte_exact(self):
        assert stable_hash(1.0) != stable_hash(1.0 + 1e-15)
        assert stable_hash(0.1 + 0.2) == stable_hash(0.30000000000000004)

    def test_ndarray_hashing_sees_dtype_shape_and_bytes(self):
        a = np.arange(6, dtype=np.float64)
        assert stable_hash(a) == stable_hash(a.copy())
        assert stable_hash(a) != stable_hash(a.reshape(2, 3))
        assert stable_hash(a) != stable_hash(a.astype(np.float32))

    def test_dict_order_does_not_matter(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_lambdas_are_rejected(self):
        with pytest.raises(CacheKeyError):
            canonicalize(lambda x: x)

    def test_arbitrary_objects_are_rejected(self):
        class Opaque:
            pass

        with pytest.raises(CacheKeyError):
            canonicalize(Opaque())

    def test_named_functions_canonicalise_by_qualname(self):
        ref = canonicalize(_metric_squared)
        assert ref == ["fn", f"{_metric_squared.__module__}._metric_squared"]


class TestExecutorSurface:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            SweepExecutor("threads")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepExecutor("process", max_workers=0)

    def test_rejects_bad_sweep_param(self):
        with pytest.raises(ValueError):
            BerSweepTask(config=_noisy_config(), param="not_a_field")

    def test_empty_sweep(self):
        report = SweepExecutor("serial").run([], _task(), seed=0)
        assert report.points == [] and report.records == []

    def test_progress_records_fire_per_point(self):
        seen: list[PointRecord] = []
        executor = SweepExecutor("serial", on_progress=seen.append)
        executor.run([1.0, 2.0], FunctionTask(_metric_squared))
        assert [r.index for r in seen] == [0, 1]
        assert all(not r.cached for r in seen)
        assert "computed" in seen[0].describe()

    def test_sweep_1d_executor_path_matches_reference(self):
        reference = sweep_1d([1.0, 2.0, 3.0], _metric_squared)
        routed = sweep_1d(
            [1.0, 2.0, 3.0], _metric_squared, executor=SweepExecutor("serial")
        )
        assert routed == reference

    def test_sweep_1d_on_point_streams_in_order(self):
        seen = []
        sweep_1d(
            [1.0, 2.0],
            _metric_squared,
            on_point=lambda p: seen.append(p.value),
            executor=SweepExecutor("serial"),
        )
        assert seen == [1.0, 2.0]

    def test_run_sweep_convenience(self):
        report = run_sweep([2.0], _task(), backend="serial", seed=1)
        assert len(report.points) == 1
        assert report.backend == "serial"

    def test_from_env_parses_environment(self, tmp_path):
        executor = SweepExecutor.from_env(
            environ={
                "REPRO_SWEEP_BACKEND": "process",
                "REPRO_SWEEP_WORKERS": "3",
                "REPRO_SWEEP_CACHE": str(tmp_path / "cache"),
            }
        )
        assert executor.backend == "process"
        assert executor.max_workers == 3
        assert executor.cache is not None

    def test_from_env_defaults_to_serial_uncached(self):
        executor = SweepExecutor.from_env(environ={})
        assert executor.backend == "serial"
        assert executor.cache is None

    def test_report_summary_mentions_backend_and_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor("serial", cache=cache)
        executor.run(_VALUES[:2], _task(), seed=7)
        report = executor.run(_VALUES[:2], _task(), seed=7)
        text = report.summary()
        assert "serial backend" in text
        assert "2 cache hits" in text


class TestFaultToleranceKnobs:
    def test_from_env_parses_fault_tolerance_knobs(self):
        executor = SweepExecutor.from_env(
            environ={
                "REPRO_SWEEP_TIMEOUT": "2.5",
                "REPRO_SWEEP_MAX_RETRIES": "3",
                "REPRO_SWEEP_BACKOFF_BASE": "0.01",
            }
        )
        assert executor.timeout_s == 2.5
        assert executor.retry is not None
        assert executor.retry.max_retries == 3
        assert executor.retry.backoff_base_s == 0.01

    def test_from_env_leaves_fault_knobs_off_by_default(self):
        executor = SweepExecutor.from_env(environ={})
        assert executor.timeout_s is None
        # None normalises to the no-retry policy: one try, no backoff
        assert executor.retry.max_retries == 0

    @pytest.mark.parametrize(
        "name, value",
        [
            ("REPRO_SWEEP_TIMEOUT", "soon"),
            ("REPRO_SWEEP_TIMEOUT", "-1"),
            ("REPRO_SWEEP_MAX_RETRIES", "many"),
            ("REPRO_SWEEP_MAX_RETRIES", "-2"),
            ("REPRO_SWEEP_BACKOFF_BASE", "fast"),
            ("REPRO_SWEEP_BACKOFF_BASE", "0"),
        ],
    )
    def test_from_env_rejects_bad_knobs_naming_the_variable(self, name, value):
        with pytest.raises(ValueError, match=name):
            SweepExecutor.from_env(environ={name: value})

    @pytest.mark.parametrize("timeout_s", [0.0, -1.0])
    def test_constructor_rejects_nonpositive_timeout(self, timeout_s):
        with pytest.raises(ValueError, match="timeout_s"):
            SweepExecutor("serial", timeout_s=timeout_s)
