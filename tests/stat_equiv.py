"""Reusable statistical-equivalence helpers for tier acceptance tests.

The compiled fast tier (:class:`repro.sim.fastlink.FastLinkSimulator`)
is a documented *statistical* tier: it promises the same BER/detection
statistics as the bit-exact chain, not the same bytes.  Its acceptance
tests therefore need principled "same distribution?" checks rather than
``array_equal``.  Two standard ones live here:

``wilson_ci_overlap``
    Accept when the two estimates' Wilson score intervals intersect.
    Conservative and robust at the tiny error counts a quick CI run
    produces (including zero observed errors, where a Wald interval
    would degenerate to a point).

``two_proportion_z`` / ``proportions_differ``
    The classic pooled two-sample proportion z-test.  Sharper than
    interval overlap at large counts; ``proportions_differ`` returns
    True only when the null (equal underlying rates) is rejected at
    ``alpha``, so tests assert ``not proportions_differ(...)``.

Both operate on raw ``(successes, trials)`` counts so they apply to bit
errors over bits, frame detections over frames, or any other Bernoulli
summary the simulators report.  Pure ``math`` — no scipy — so the
helpers stay importable on the leanest CI leg.
"""

from __future__ import annotations

import math

__all__ = [
    "wilson_interval",
    "wilson_ci_overlap",
    "two_proportion_z",
    "proportions_differ",
]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a Bernoulli rate.

    Matches :meth:`repro.sim.monte_carlo.BerEstimate.confidence_interval`
    (same centre/half-width algebra) but works on raw counts.  Returns
    the vacuous ``(0.0, 1.0)`` when ``trials == 0``.
    """
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError(
            f"need 0 <= successes <= trials, got {successes}/{trials}"
        )
    if not math.isfinite(z) or z <= 0.0:
        raise ValueError(f"z must be a positive finite quantile, got {z}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    n = trials
    denominator = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denominator
    half_width = (
        z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator
    )
    return (max(0.0, centre - half_width), min(1.0, centre + half_width))


def wilson_ci_overlap(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    z: float = 1.96,
) -> bool:
    """True when the two samples' Wilson intervals intersect.

    The fast-tier acceptance criterion: two estimators of the same
    underlying rate should produce overlapping intervals essentially
    always at z=1.96 (the non-overlap probability of two independent
    95% intervals on a shared rate is well under 5%).
    """
    lo_a, hi_a = wilson_interval(successes_a, trials_a, z)
    lo_b, hi_b = wilson_interval(successes_b, trials_b, z)
    return lo_a <= hi_b and lo_b <= hi_a


def two_proportion_z(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> float:
    """Pooled two-sample proportion z-statistic.

    Zero when the sample proportions are equal (including the pooled
    degenerate cases p=0 and p=1, where the observed proportions are
    necessarily identical and no evidence of a difference exists).
    """
    for s, n in ((successes_a, trials_a), (successes_b, trials_b)):
        if s < 0 or n <= 0 or s > n:
            raise ValueError(f"need 0 <= successes <= trials > 0, got {s}/{n}")
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance == 0.0:
        return 0.0
    return (p_a - p_b) / math.sqrt(variance)


def proportions_differ(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    alpha: float = 1e-3,
) -> bool:
    """Two-sided test: is there evidence the underlying rates differ?

    Returns True when the pooled z-test rejects equal rates at level
    ``alpha``.  Equivalence tests assert the negation, so ``alpha``
    defaults small (1e-3): an agreement test should only fail on strong
    evidence, not on the 1-in-20 flukes alpha=0.05 would admit.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    z = two_proportion_z(successes_a, trials_a, successes_b, trials_b)
    p_value = math.erfc(abs(z) / math.sqrt(2.0))
    return p_value < alpha
