"""Tests for repro.sim: Monte-Carlo, sweeps, tables, plotting."""

import pytest

from repro.core.link import LinkConfig
from repro.core.modulation import BPSK, QPSK
from repro.sim.monte_carlo import BerEstimate, awgn_symbol_ber, estimate_link_ber
from repro.sim.plotting import ascii_plot, format_db
from repro.sim.results import ResultTable
from repro.sim.sweep import SweepPoint, sweep_1d


class TestBerEstimate:
    def test_point_estimate(self):
        est = BerEstimate(bit_errors=10, bits_tested=1000, frames=1, frames_detected=1)
        assert est.ber == pytest.approx(0.01)

    def test_zero_bits_gives_zero(self):
        est = BerEstimate(0, 0, 0, 0)
        assert est.ber == 0.0

    def test_wilson_interval_contains_estimate(self):
        est = BerEstimate(bit_errors=50, bits_tested=10_000, frames=5, frames_detected=5)
        low, high = est.confidence_interval()
        assert low < est.ber < high
        assert 0.0 <= low and high <= 1.0

    def test_interval_narrows_with_more_bits(self):
        small = BerEstimate(5, 1_000, 1, 1).confidence_interval()
        large = BerEstimate(500, 100_000, 1, 1).confidence_interval()
        assert (large[1] - large[0]) < (small[1] - small[0])


class TestAwgnSymbolBer:
    @pytest.mark.parametrize("snr_db,scheme", [(6.0, BPSK), (10.0, QPSK)])
    def test_matches_theory(self, snr_db, scheme):
        measured = awgn_symbol_ber(scheme, snr_db, num_bits=400_000, seed=0)
        expected = scheme.theoretical_ber(snr_db)
        assert measured == pytest.approx(expected, rel=0.15)

    def test_deterministic(self):
        a = awgn_symbol_ber(QPSK, 8.0, num_bits=10_000, seed=5)
        b = awgn_symbol_ber(QPSK, 8.0, num_bits=10_000, seed=5)
        assert a == b

    def test_high_snr_zero_errors(self):
        assert awgn_symbol_ber(BPSK, 30.0, num_bits=10_000, seed=1) == 0.0

    def test_rejects_tiny_bit_count(self):
        with pytest.raises(ValueError):
            awgn_symbol_ber(QPSK, 10.0, num_bits=1)


class TestEstimateLinkBer:
    def test_good_link_converges_fast(self):
        config = LinkConfig(distance_m=2.0)
        est = estimate_link_ber(config, target_errors=10, max_bits=4096, bits_per_frame=2048)
        assert est.ber < 1e-3
        assert est.frames_detected == est.frames

    def test_stops_at_max_bits(self):
        config = LinkConfig(distance_m=2.0)
        est = estimate_link_ber(config, target_errors=10_000, max_bits=4096, bits_per_frame=2048)
        assert est.bits_tested <= 4096 + 2048

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            estimate_link_ber(LinkConfig(), target_errors=0)
        with pytest.raises(ValueError):
            estimate_link_ber(LinkConfig(), max_bits=10, bits_per_frame=100)


class TestSweep:
    def test_applies_function(self):
        points = sweep_1d([1.0, 2.0, 3.0], lambda x: x * x)
        assert [p.metric for p in points] == [1.0, 4.0, 9.0]

    def test_callback_invoked(self):
        seen = []
        sweep_1d([1.0, 2.0], lambda x: x, on_point=lambda p: seen.append(p.value))
        assert seen == [1.0, 2.0]

    def test_point_is_frozen_record(self):
        point = SweepPoint(1.0, "metric")
        with pytest.raises(AttributeError):
            point.value = 2.0


class TestResultTable:
    def test_text_render_contains_cells(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.to_text()
        assert "T" in text and "a" in text and "2.5" in text

    def test_markdown_render(self):
        table = ResultTable("T", ["x"])
        table.add_row("v")
        md = table.to_markdown()
        assert md.startswith("| x |")
        assert "| v |" in md

    def test_row_arity_checked(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_csv_round_trip(self, tmp_path):
        table = ResultTable("T", ["a", "b"])
        table.add_row(1, "x")
        path = tmp_path / "out.csv"
        table.to_csv(path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,x"

    def test_small_floats_scientific(self):
        table = ResultTable("T", ["ber"])
        table.add_row(1.5e-6)
        assert "e-06" in table.to_text()


class TestAsciiPlot:
    def test_renders_series_and_legend(self):
        plot = ascii_plot(
            {"ber": ([1, 2, 3], [0.1, 0.01, 0.001])}, log_y=True, title="BER"
        )
        assert "BER" in plot
        assert "o = ber" in plot

    def test_log_y_skips_non_positive(self):
        plot = ascii_plot({"s": ([1, 2], [0.0, 1.0])}, log_y=True)
        assert "o" in plot

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_rejects_mismatched_series(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": ([1, 2], [1.0])})

    def test_all_non_plottable_graceful(self):
        plot = ascii_plot({"s": ([1], [0.0])}, log_y=True)
        assert "no plottable points" in plot

    def test_format_db(self):
        assert format_db(3.14159) == "+3.1 dB"
        assert format_db(-2.0) == "-2.0 dB"

    def test_multiple_series_distinct_markers(self):
        plot = ascii_plot(
            {"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])}
        )
        assert "o = a" in plot and "x = b" in plot


