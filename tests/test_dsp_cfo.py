"""Tests for repro.dsp.cfo."""

import numpy as np
import pytest

from repro.dsp.cfo import correct_cfo, estimate_cfo_from_tone, estimate_phase_offset
from repro.dsp.signal import Signal


class TestEstimateCfo:
    def test_on_bin_tone_exact(self):
        fs, n = 1e6, 4096
        freq = 20 * fs / n
        sig = Signal.tone(freq, fs, n / fs)
        assert estimate_cfo_from_tone(sig) == pytest.approx(freq, abs=1.0)

    def test_off_bin_tone_sub_bin_accuracy(self):
        fs, n = 1e6, 4096
        bin_width = fs / n
        freq = 20.3 * bin_width
        sig = Signal.tone(freq, fs, n / fs)
        assert estimate_cfo_from_tone(sig) == pytest.approx(freq, abs=bin_width / 4)

    def test_negative_frequency(self):
        fs, n = 1e6, 2048
        freq = -37 * fs / n
        sig = Signal.tone(freq, fs, n / fs)
        assert estimate_cfo_from_tone(sig) == pytest.approx(freq, abs=fs / n)

    def test_search_band_restricts(self):
        fs, n = 1e6, 4096
        sig = Signal.tone(5e3, fs, n / fs) + Signal.tone(300e3, fs, n / fs).scale(5.0)
        est = estimate_cfo_from_tone(sig, search_bandwidth_hz=50e3)
        assert est == pytest.approx(5e3, abs=500)

    def test_bad_search_band_raises(self):
        sig = Signal.tone(1e3, 1e6, 1e-3)
        with pytest.raises(ValueError):
            estimate_cfo_from_tone(sig, search_bandwidth_hz=-1.0)

    def test_robust_in_noise(self, rng):
        fs, n = 1e6, 8192
        sig = Signal.tone(123e3, fs, n / fs)
        noisy = Signal(
            sig.samples + 0.3 * (rng.standard_normal(n) + 1j * rng.standard_normal(n)),
            fs,
        )
        assert estimate_cfo_from_tone(noisy) == pytest.approx(123e3, abs=fs / n)


class TestCorrectCfo:
    def test_estimate_then_correct_leaves_dc(self):
        fs, n = 1e6, 4096
        sig = Signal.tone(40e3, fs, n / fs)
        est = estimate_cfo_from_tone(sig)
        corrected = correct_cfo(sig, est)
        assert estimate_cfo_from_tone(corrected) == pytest.approx(0.0, abs=fs / n)


class TestPhaseOffset:
    def test_known_rotation_recovered(self, rng):
        ref = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        rotated = ref * np.exp(1j * 1.2)
        assert estimate_phase_offset(rotated, ref) == pytest.approx(1.2, abs=1e-9)

    def test_noise_tolerance(self, rng):
        ref = np.exp(1j * rng.uniform(0, 2 * np.pi, 4096))
        rotated = ref * np.exp(1j * -0.7) + 0.05 * (
            rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
        )
        assert estimate_phase_offset(rotated, ref) == pytest.approx(-0.7, abs=0.02)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            estimate_phase_offset(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_phase_offset(np.zeros(0), np.zeros(0))
