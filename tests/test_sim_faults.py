"""Fault tolerance under deterministic chaos.

The contract this file pins: a sweep campaign survives every failure
mode the :class:`~repro.sim.faults.FaultPlan` harness can inject —
raised exceptions, stalls that trip the per-point timeout, killed pool
workers, corrupted cache entries, and a killed driver process — and
the *numbers never change*: recovered points, resumed points and
degraded-backend points are all bit-identical to an undisturbed run.
"""

from __future__ import annotations

import logging
import pickle

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.link import LinkConfig
from repro.core.tag import TagConfig
from repro.sim.cache import MISS, ResultCache
from repro.sim.checkpoint import CheckpointError, SweepCheckpoint
from repro.sim.executor import (
    BerSweepTask,
    FunctionTask,
    PointTimeoutError,
    SweepExecutor,
)
from repro.sim.faults import (
    BlockageFrameOracle,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    StreamFaultPlan,
    StreamFaultSpec,
    blockage_burst_plan,
    corrupt_file,
)
from repro.sim.retry import RetryPolicy


def _noisy_config() -> LinkConfig:
    return LinkConfig(
        tag=TagConfig(symbol_rate_hz=10e6, samples_per_symbol=4),
        environment=Environment.typical_office(),
    )


def _ber_task(**overrides) -> BerSweepTask:
    kwargs = dict(
        config=_noisy_config(),
        param="distance_m",
        target_errors=8,
        max_bits=9_000,
        bits_per_frame=3_000,
    )
    kwargs.update(overrides)
    return BerSweepTask(**kwargs)


_VALUES = [2.0, 9.0, 13.0, 17.0]


def _square(value: float) -> float:
    """Module-level so the process backend can pickle it."""
    return value * value


def _fast_retry(max_retries: int = 2) -> RetryPolicy:
    return RetryPolicy(max_retries=max_retries, backoff_base_s=1e-6, jitter=0.0)


# -- the plan itself ----------------------------------------------------------


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", index=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"index": -1},
            {"attempts": 0},
            {"delay_s": -1.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**{"kind": "raise", "index": 0, **kwargs})


class TestFaultPlan:
    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(20, seed=5, raise_rate=0.3, kill_rate=0.1)
        b = FaultPlan.random(20, seed=5, raise_rate=0.3, kill_rate=0.1)
        assert a.specs == b.specs
        c = FaultPlan.random(20, seed=6, raise_rate=0.3, kill_rate=0.1)
        assert a.specs != c.specs

    def test_random_plan_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan.random(5, raise_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.random(5, max_faulty_attempts=0)

    def test_fault_fires_only_while_attempts_remain(self):
        plan = FaultPlan(specs=(FaultSpec("raise", 2, attempts=2),))
        with pytest.raises(InjectedFault):
            plan.before_attempt(2, 0)
        with pytest.raises(InjectedFault):
            plan.before_attempt(2, 1)
        plan.before_attempt(2, 2)  # budget spent: no-op
        plan.before_attempt(1, 0)  # different point: no-op

    def test_kill_is_noop_in_the_owning_process(self):
        plan = FaultPlan(specs=(FaultSpec("kill", 0),))
        plan.before_attempt(0, 0)  # would hard-exit a worker; harmless here

    def test_plan_pickles(self):
        plan = FaultPlan.random(10, seed=3, raise_rate=0.5, corrupt_rate=0.2)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.main_pid == plan.main_pid

    def test_corrupt_indices_listed_but_never_fire_in_compute(self):
        plan = FaultPlan(specs=(FaultSpec("corrupt", 3),))
        assert plan.corrupt_indices() == [3]
        plan.before_attempt(3, 0)  # corrupt is a cache-side fault

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(specs=(FaultSpec("raise", 0),)).is_empty


# -- per-point isolation, retries, timeouts (serial) --------------------------


class TestErrorIsolation:
    def test_raising_point_becomes_failed_record(self):
        plan = FaultPlan(specs=(FaultSpec("raise", 1, attempts=99),))
        report = SweepExecutor("serial").run(
            [1.0, 2.0, 3.0], FunctionTask(_square), faults=plan
        )
        assert report.metrics == [1.0, None, 9.0]
        assert report.failed == 1
        record = report.records[1]
        assert not record.ok and record.status == "failed"
        assert "InjectedFault" in record.error
        assert "FAILED" in record.describe()
        assert "InjectedFault" in report.failure_summary()
        assert "1 failed" in report.summary()

    def test_retry_recovers_bit_identical(self):
        clean = SweepExecutor("serial").run(_VALUES, _ber_task(), seed=3)
        plan = FaultPlan(specs=(FaultSpec("raise", 2, attempts=2),))
        chaotic = SweepExecutor("serial", retry=_fast_retry(2)).run(
            _VALUES, _ber_task(), seed=3, faults=plan
        )
        assert chaotic.points == clean.points
        assert pickle.dumps(chaotic.points) == pickle.dumps(clean.points)
        assert chaotic.failed == 0
        assert chaotic.retried == 2
        assert chaotic.recovered == 1
        assert chaotic.records[2].attempts == 3

    def test_exhausted_budget_counts_failed_not_recovered(self):
        plan = FaultPlan(specs=(FaultSpec("raise", 0, attempts=99),))
        report = SweepExecutor("serial", retry=_fast_retry(2)).run(
            [5.0], FunctionTask(_square), faults=plan
        )
        assert report.failed == 1
        assert report.retried == 2
        assert report.recovered == 0
        assert report.records[0].attempts == 3

    def test_timeout_trips_and_retry_recovers(self):
        plan = FaultPlan(specs=(FaultSpec("hang", 0, attempts=1, delay_s=30.0),))
        executor = SweepExecutor(
            "serial", timeout_s=0.2, retry=_fast_retry(1)
        )
        report = executor.run([4.0], FunctionTask(_square), faults=plan)
        assert report.metrics == [4.0 * 4.0]
        assert report.retried == 1 and report.recovered == 1
        assert report.records[0].attempts == 2

    def test_timeout_without_retry_fails_with_timeout_traceback(self):
        plan = FaultPlan(specs=(FaultSpec("hang", 0, attempts=9, delay_s=30.0),))
        report = SweepExecutor("serial", timeout_s=0.2).run(
            [4.0], FunctionTask(_square), faults=plan
        )
        assert report.failed == 1
        assert PointTimeoutError.__name__ in report.records[0].error

    def test_faultless_run_reports_clean_counters(self):
        report = SweepExecutor("serial").run([1.0, 2.0], FunctionTask(_square))
        assert report.failed == report.retried == report.recovered == 0
        assert not report.degraded
        assert report.failure_summary() == ""


# -- the acceptance chaos scenario (process backend) --------------------------


class TestChaosAcceptance:
    """Seeded FaultPlan: exceptions + a worker kill + a timeout, one run."""

    def _chaos_plan(self) -> FaultPlan:
        return FaultPlan(
            specs=(
                FaultSpec("raise", 1, attempts=1),  # transient: 1 retry
                FaultSpec("raise", 2, attempts=99),  # permanent: exhausts budget
                FaultSpec("kill", 3, attempts=1),  # worker death -> degrade
                FaultSpec("hang", 4, attempts=1, delay_s=30.0),  # timeout
            )
        )

    def _run(self):
        executor = SweepExecutor(
            "process",
            max_workers=2,
            timeout_s=1.0,
            retry=_fast_retry(2),
        )
        return executor.run(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            FunctionTask(_square),
            seed=0,
            faults=self._chaos_plan(),
        )

    def test_sweep_completes_with_exact_counters(self):
        report = self._run()
        assert report.metrics == [1.0, 4.0, None, 16.0, 25.0, 36.0]
        assert report.failed == 1
        assert report.retried == 4  # 1 (raise) + 2 (exhausted) + 1 (timeout)
        assert report.recovered == 2  # the transient raise + the timeout
        assert report.degraded  # the kill broke the pool
        assert len(report.records) == 6
        assert [r.index for r in report.records] == [0, 1, 2, 3, 4, 5]
        assert "degraded to serial" in report.summary()

    def test_chaos_counters_are_reproducible(self):
        a = self._run()
        b = self._run()
        assert (a.failed, a.retried, a.recovered, a.degraded) == (
            b.failed,
            b.retried,
            b.recovered,
            b.degraded,
        )
        assert a.metrics == b.metrics

    def test_recovered_points_match_the_faultless_run(self):
        clean = SweepExecutor("serial").run(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0], FunctionTask(_square), seed=0
        )
        chaotic = self._run()
        for i, record in enumerate(chaotic.records):
            if record.ok:
                assert chaotic.points[i] == clean.points[i]


class TestPoolDegradation:
    def test_worker_kill_degrades_and_still_answers(self):
        plan = FaultPlan(specs=(FaultSpec("kill", 0, attempts=1),))
        clean = SweepExecutor("serial").run(_VALUES, _ber_task(), seed=7)
        report = SweepExecutor("process", max_workers=2).run(
            _VALUES, _ber_task(), seed=7, faults=plan
        )
        assert report.degraded
        assert report.failed == 0
        assert report.points == clean.points
        assert pickle.dumps(report.points) == pickle.dumps(clean.points)


# -- checkpoint / resume ------------------------------------------------------


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_uninterrupted(self, tmp_path):
        """Kill-then-resume == uninterrupted, byte for byte (acceptance)."""
        task = _ber_task()
        uninterrupted = SweepExecutor("serial").run(_VALUES, task, seed=3)

        path = tmp_path / "sweep.jsonl"
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt  # simulated SIGINT mid-campaign

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor("serial", on_progress=killer).run(
                _VALUES, task, seed=3, checkpoint=path
            )
        assert len(SweepCheckpoint(path).load()) == 2

        resumed = SweepExecutor("serial").run(
            _VALUES, task, seed=3, checkpoint=path, resume=True
        )
        assert resumed.resumed == 2
        assert resumed.points == uninterrupted.points
        assert pickle.dumps(resumed.metrics) == pickle.dumps(
            uninterrupted.metrics
        )
        # and the checkpoint is now complete: a third run computes nothing
        replay = SweepExecutor("serial").run(
            _VALUES, task, seed=3, checkpoint=path, resume=True
        )
        assert replay.resumed == len(_VALUES)
        assert pickle.dumps(replay.metrics) == pickle.dumps(
            uninterrupted.metrics
        )

    def test_resumed_records_are_flagged(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(_square), checkpoint=path
        )
        resumed = SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(_square), checkpoint=path, resume=True
        )
        assert all(r.resumed for r in resumed.records)
        assert "resumed" in resumed.records[0].describe()

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            SweepExecutor("serial").run(
                [1.0], FunctionTask(_square), resume=True
            )

    def test_resume_refuses_a_different_seed(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(_square), seed=3, checkpoint=path
        )
        with pytest.raises(CheckpointError):
            SweepExecutor("serial").run(
                [1.0, 2.0],
                FunctionTask(_square),
                seed=4,
                checkpoint=path,
                resume=True,
            )

    def test_resume_refuses_a_different_task(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepExecutor("serial").run(_VALUES, _ber_task(), seed=3, checkpoint=path)
        with pytest.raises(CheckpointError):
            SweepExecutor("serial").run(
                _VALUES,
                _ber_task(target_errors=9),
                seed=3,
                checkpoint=path,
                resume=True,
            )

    def test_failed_points_are_recomputed_on_resume(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        plan = FaultPlan(specs=(FaultSpec("raise", 1, attempts=1),))
        first = SweepExecutor("serial").run(
            [1.0, 2.0, 3.0], FunctionTask(_square), faults=plan, checkpoint=path
        )
        assert first.failed == 1  # no retries configured: point 1 failed
        resumed = SweepExecutor("serial").run(
            [1.0, 2.0, 3.0], FunctionTask(_square), checkpoint=path, resume=True
        )
        assert resumed.resumed == 2
        assert resumed.metrics == [1.0, 4.0, 9.0]  # recomputed cleanly
        assert resumed.failed == 0

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(_square), seed=0, checkpoint=path
        )
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "index": 5, "val')  # torn write
        checkpoint = SweepCheckpoint(path)
        entries = checkpoint.load()
        assert sorted(entries) == [0, 1]
        assert checkpoint.skipped_lines == 1

    def test_corrupt_metric_payload_is_skipped(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(_square), seed=0, checkpoint=path
        )
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"sha256": "', '"sha256": "00')
        path.write_text("\n".join(lines) + "\n")
        checkpoint = SweepCheckpoint(path)
        entries = checkpoint.load()
        assert len(entries) == 1
        assert checkpoint.skipped_lines == 1

    def test_missing_header_is_refused(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        path.write_text("")
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path).load()

    def test_process_backend_checkpoints_too(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        report = SweepExecutor("process", max_workers=2).run(
            [1.0, 2.0, 3.0], FunctionTask(_square), seed=0, checkpoint=path
        )
        entries = SweepCheckpoint(path).load(seed=0)
        assert sorted(entries) == [0, 1, 2]
        assert [entries[i].metric for i in range(3)] == report.metrics


class TestBatchedFsync:
    """``fsync_every=N`` batches the *sync*, never the write: every
    line still lands via write+flush, so resume and torn-tail behaviour
    are unchanged — only the durability-against-power-loss window
    widens to N-1 records."""

    def test_rejects_nonpositive_fsync_every(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_every"):
            SweepCheckpoint(tmp_path / "cp.jsonl", fsync_every=0)

    def test_batched_checkpoint_resumes_bit_identically(self, tmp_path):
        task = _ber_task()
        uninterrupted = SweepExecutor("serial").run(_VALUES, task, seed=3)

        checkpoint = SweepCheckpoint(tmp_path / "cp.jsonl", fsync_every=16)
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor("serial", on_progress=killer).run(
                _VALUES, task, seed=3, checkpoint=checkpoint
            )
        # both records survive despite no fsync having fired yet
        assert len(SweepCheckpoint(checkpoint.path).load(seed=3)) == 2

        resumed = SweepExecutor("serial").run(
            _VALUES,
            task,
            seed=3,
            checkpoint=SweepCheckpoint(checkpoint.path, fsync_every=16),
            resume=True,
        )
        assert resumed.resumed == 2
        assert pickle.dumps(resumed.metrics) == pickle.dumps(
            uninterrupted.metrics
        )

    def test_torn_tail_stays_one_line_with_batching(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "cp.jsonl", fsync_every=8)
        SweepExecutor("serial").run(
            [1.0, 2.0, 3.0], FunctionTask(_square), seed=0, checkpoint=checkpoint
        )
        with checkpoint.path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "ind')  # torn write
        loader = SweepCheckpoint(checkpoint.path)
        assert sorted(loader.load(seed=0)) == [0, 1, 2]
        assert loader.skipped_lines == 1

    def test_completed_run_is_synced(self, tmp_path):
        # the executor flushes the batch when the campaign completes,
        # so a finished checkpoint owes the disk nothing
        checkpoint = SweepCheckpoint(tmp_path / "cp.jsonl", fsync_every=64)
        SweepExecutor("serial").run(
            [1.0, 2.0, 3.0], FunctionTask(_square), seed=0, checkpoint=checkpoint
        )
        assert checkpoint._appends_since_sync == 0

    def test_sync_is_safe_with_nothing_pending(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "absent.jsonl", fsync_every=4)
        checkpoint.sync()  # no file, no batched appends: a no-op
        assert not checkpoint.exists()


class TestInterruptSafety:
    def test_interrupt_leaves_no_partial_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", version="v")
        path = tmp_path / "cp.jsonl"
        task = FunctionTask(_square, cache_token="sq-v1")
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor("serial", cache=cache, on_progress=killer).run(
                [1.0, 2.0, 3.0, 4.0], task, seed=0, checkpoint=path
            )
        # checkpoint: loadable, exactly the completed prefix
        assert sorted(SweepCheckpoint(path).load(seed=0)) == [0, 1]
        # atomicity: no half-written temp files anywhere
        assert not list((tmp_path / "cache").glob(".tmp-*"))
        assert not list(tmp_path.glob(".tmp-*"))
        # cache entries that exist are complete and readable
        assert cache.verify(quarantine=False).corrupt == 0
        # and the campaign finishes cleanly from where it stopped
        resumed = SweepExecutor("serial", cache=cache).run(
            [1.0, 2.0, 3.0, 4.0], task, seed=0, checkpoint=path, resume=True
        )
        assert resumed.metrics == [1.0, 4.0, 9.0, 16.0]
        assert resumed.resumed == 2


# -- cache corruption ---------------------------------------------------------


class TestCacheCorruption:
    def _warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", version="v")
        task = FunctionTask(_square, cache_token="sq-v1")
        executor = SweepExecutor("serial", cache=cache)
        executor.run(_VALUES[:3], task, seed=0)
        keys = [
            cache.key_for(seed=0, index=i, **task.cache_parts(v))
            for i, v in enumerate(_VALUES[:3])
        ]
        return cache, task, keys

    def test_fault_plan_corrupts_chosen_entry(self, tmp_path, caplog):
        cache, task, keys = self._warm(tmp_path)
        plan = FaultPlan(specs=(FaultSpec("corrupt", 1),))
        assert plan.corrupt_cache_entries(cache, keys) == 1
        with caplog.at_level(logging.WARNING, logger="repro.sim.cache"):
            warm = SweepExecutor("serial", cache=cache).run(
                _VALUES[:3], task, seed=0
            )
        # corrupted entry is a miss (recomputed), the others hit
        assert warm.cache_hits == 2 and warm.cache_misses == 1
        assert warm.metrics == [v * v for v in _VALUES[:3]]
        assert cache.stats.corrupt == 1
        assert any("integrity" in r.message for r in caplog.records)

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        cache, task, keys = self._warm(tmp_path)
        corrupt_file(cache.entry_path(keys[0]))
        report = cache.verify(quarantine=True)
        assert report.checked == 3
        assert report.corrupt == 1 and report.quarantined == 1
        assert len(cache) == 2
        assert (cache.quarantine_dir / f"{keys[0]}.pkl").exists()
        assert cache.get(keys[0]) is MISS
        # a second scan is clean
        assert cache.verify().corrupt == 0

    def test_unpicklable_payload_counts_as_read_error(self, tmp_path, caplog):
        import hashlib

        cache = ResultCache(tmp_path / "cache", version="v")
        key = cache.key_for(probe=1)
        payload = b"this is not a pickle"
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        cache._path(key).write_bytes(
            b"repro-cache:2\n" + digest + b"\n" + payload
        )
        with caplog.at_level(logging.WARNING, logger="repro.sim.cache"):
            assert cache.get(key) is MISS
        assert cache.stats.errors == 1
        assert cache.stats.corrupt == 0
        assert any("unpickle" in r.message for r in caplog.records)

    def test_truncated_entry_counts_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", version="v")
        key = cache.key_for(probe=2)
        cache.put(key, list(range(50)))
        path = cache.entry_path(key)
        path.write_bytes(path.read_bytes()[:-7])
        assert cache.get(key) is MISS
        assert cache.stats.corrupt == 1


# -- channel-level chaos ------------------------------------------------------


class TestBlockagePlan:
    def test_plan_is_seed_deterministic(self):
        a = blockage_burst_plan(1.0, rate_hz=5.0, seed=3)
        b = blockage_burst_plan(1.0, rate_hz=5.0, seed=3)
        assert a == b
        assert a != blockage_burst_plan(1.0, rate_hz=5.0, seed=4)

    def test_zero_rate_means_no_events(self):
        assert blockage_burst_plan(1.0, rate_hz=0.0, seed=0) == []

    def test_events_stay_inside_the_horizon(self):
        events = blockage_burst_plan(0.5, rate_hz=20.0, seed=1)
        assert events
        for event in events:
            assert 0.0 <= event.start_s < event.stop_s <= 0.5

    def test_rate_scales_event_count(self):
        low = blockage_burst_plan(10.0, rate_hz=1.0, seed=0)
        high = blockage_burst_plan(10.0, rate_hz=20.0, seed=0)
        assert len(high) > len(low)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0, "rate_hz": 1.0},
            {"duration_s": 1.0, "rate_hz": -1.0},
            {"duration_s": 1.0, "rate_hz": 1.0, "mean_duration_s": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        duration = kwargs.pop("duration_s")
        with pytest.raises(ValueError):
            blockage_burst_plan(duration, **kwargs)


class TestBlockageFrameOracle:
    def test_blocked_slots_mostly_fail(self):
        events = blockage_burst_plan(
            1.0, rate_hz=0.0, seed=0
        )  # start clean, add one wall-to-wall blocker
        from repro.channel.blockage import BlockageEvent

        events = [BlockageEvent(start_s=0.0, stop_s=1.0, attenuation_db=20.0)]
        oracle = BlockageFrameOracle(
            events,
            frame_duration_s=1e-3,
            clear_success_prob=1.0,
            blocked_success_prob=0.0,
        )
        rng = np.random.default_rng(0)
        outcomes = [oracle(0, rng) for _ in range(100)]
        assert not any(outcomes)
        assert oracle.blocked_transmissions == 100

    def test_clear_slots_mostly_succeed(self):
        oracle = BlockageFrameOracle(
            [], frame_duration_s=1e-3, clear_success_prob=1.0
        )
        rng = np.random.default_rng(0)
        assert all(oracle(0, rng) for _ in range(100))
        assert oracle.blocked_transmissions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockageFrameOracle([], frame_duration_s=0.0)
        with pytest.raises(ValueError):
            BlockageFrameOracle([], frame_duration_s=1e-3, clear_success_prob=1.5)


class TestStreamFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            StreamFaultSpec(kind="meteor", at_s=0.0)
        with pytest.raises(ValueError, match="at_s"):
            StreamFaultSpec(kind="flood", at_s=-1.0)
        with pytest.raises(ValueError, match="probability"):
            StreamFaultSpec(kind="malformed", at_s=0.0, probability=1.5)
        with pytest.raises(ValueError, match="factor"):
            StreamFaultSpec(kind="slow", at_s=0.0, factor=0.0)

    def test_window_contains(self):
        spec = StreamFaultSpec(kind="slow", at_s=1.0, duration_s=2.0)
        assert not spec.window_contains(0.5)
        assert spec.window_contains(1.0)
        assert spec.window_contains(2.9)
        assert not spec.window_contains(3.0)


class TestStreamFaultPlan:
    def _stream(self, n=40):
        return [(0.1 * i, f"ev{i}") for i in range(n)]

    def test_random_plan_is_seed_deterministic(self):
        kwargs = dict(horizon_s=10.0, floods=2, stalls=1, slow_windows=1,
                      malformed_rate=0.1, duplicate_rate=0.1)
        assert (StreamFaultPlan.random(seed=5, **kwargs)
                == StreamFaultPlan.random(seed=5, **kwargs))
        assert (StreamFaultPlan.random(seed=5, **kwargs)
                != StreamFaultPlan.random(seed=6, **kwargs))

    def test_transform_is_deterministic(self):
        plan = StreamFaultPlan.random(
            horizon_s=4.0, seed=3, floods=1, flood_events=5, stalls=1,
            malformed_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2,
        )
        run = lambda: list(plan.transform(
            iter(self._stream()),
            flood_factory=lambda k, t: f"flood{k}",
            malform=lambda item, why: ("bad", item),
        ))
        assert run() == run()

    def test_stall_shifts_later_arrivals(self):
        plan = StreamFaultPlan(
            specs=(StreamFaultSpec(kind="stall", at_s=1.0, duration_s=0.5),),
        )
        out = list(plan.transform(iter(self._stream(30))))
        times = dict(zip((item for _, item in out),
                         (t for t, _ in out)))
        assert times["ev5"] == pytest.approx(0.5)   # before the stall
        assert times["ev20"] == pytest.approx(2.5)  # 2.0 + 0.5 shift

    def test_flood_injects_burst(self):
        plan = StreamFaultPlan(
            specs=(StreamFaultSpec(kind="flood", at_s=0.55, events=4,
                                   rate_hz=100.0),),
        )
        out = list(plan.transform(iter(self._stream(20)),
                                  flood_factory=lambda k, t: f"flood{k}"))
        floods = [(t, item) for t, item in out
                  if isinstance(item, str) and item.startswith("flood")]
        assert [item for _, item in floods] == [
            "flood0", "flood1", "flood2", "flood3"
        ]
        assert floods[0][0] == pytest.approx(0.55)
        assert floods[-1][0] == pytest.approx(0.58)

    def test_flood_without_factory_is_skipped(self):
        plan = StreamFaultPlan(
            specs=(StreamFaultSpec(kind="flood", at_s=0.5, events=4),),
        )
        out = list(plan.transform(iter(self._stream(10))))
        assert len(out) == 10

    def test_slow_windows_compound(self):
        plan = StreamFaultPlan(
            specs=(
                StreamFaultSpec(kind="slow", at_s=0.0, duration_s=2.0,
                                factor=3.0),
                StreamFaultSpec(kind="slow", at_s=1.0, duration_s=2.0,
                                factor=2.0),
            ),
        )
        assert plan.service_factor(0.5) == pytest.approx(3.0)
        assert plan.service_factor(1.5) == pytest.approx(6.0)
        assert plan.service_factor(2.5) == pytest.approx(2.0)
        assert plan.service_factor(5.0) == pytest.approx(1.0)

    def test_reorder_emits_backwards_timestamps(self):
        plan = StreamFaultPlan(
            specs=(StreamFaultSpec(kind="reorder", at_s=0.0,
                                   duration_s=100.0, probability=0.5),),
            seed=1,
        )
        out = list(plan.transform(iter(self._stream(60))))
        times = [t for t, _ in out]
        assert any(b < a for a, b in zip(times, times[1:]))
        assert sorted(item for _, item in out) == sorted(
            item for _, item in self._stream(60)
        )

    def test_duplicates_reemit_same_item(self):
        plan = StreamFaultPlan(
            specs=(StreamFaultSpec(kind="duplicate", at_s=0.0,
                                   duration_s=100.0, probability=0.5),),
            seed=1,
        )
        out = [item for _, item in plan.transform(iter(self._stream(60)))]
        assert len(out) > 60
        assert len(set(out)) == 60

    def test_empty_plan_is_identity(self):
        plan = StreamFaultPlan()
        assert plan.is_empty
        assert list(plan.transform(iter(self._stream()))) == self._stream()
