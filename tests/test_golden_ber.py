"""Golden regression tests: pin the BER numerics against drift.

Two layers of protection:

* **Theory agreement** — :func:`awgn_symbol_ber` must agree with
  :meth:`ModulationScheme.theoretical_ber` at three SNR points per
  scheme, judged by a Wilson score interval (z = 3.9, ~1e-4 two-sided)
  around the measured count.  16QAM's closed form is a union *bound*,
  so there the bound must sit above the Wilson lower edge (and within
  a decade) rather than inside the interval.
* **Frozen fingerprints** — exact, bit-for-bit values of
  ``estimate_link_ber(seed=0)`` on the office link and of one AWGN
  waterfall point.  Any change to the waveform chain, the RNG
  consumption order, or the estimator loop fails these immediately —
  silent numerics drift cannot pass CI.

If a fingerprint fails after an *intentional* physics change, re-run
the printed expression and update the constant in the same commit.
"""

from __future__ import annotations

import pytest

from repro.channel.blockage import BlockageEvent
from repro.channel.environment import Environment
from repro.core.link import LinkConfig
from repro.core.modulation import available_schemes, get_scheme
from repro.sim.monte_carlo import BerEstimate, awgn_symbol_ber, estimate_link_ber

#: Bits per AWGN measurement (keeps each point < 100 ms).
_NUM_BITS = 60_000
_SEED = 123
#: Wilson z: ~4-sigma two-sided — roomy but still catches real drift.
_Z = 3.9

#: (scheme, [snr_db x3], mode) — "exact" closed forms must land inside
#: the Wilson interval; "bound" (union-bound) forms must upper-bound it.
_GOLDEN_POINTS = [
    ("OOK", (4.0, 6.0, 8.0), "exact"),
    ("BPSK", (4.0, 6.0, 8.0), "exact"),
    ("QPSK", (4.0, 6.0, 8.0), "exact"),
    ("8PSK", (8.0, 10.0, 12.0), "exact"),
    ("16QAM", (10.0, 12.0, 14.0), "bound"),
]


def _wilson_interval(measured_ber: float, num_bits: int) -> tuple[float, float]:
    estimate = BerEstimate(
        bit_errors=round(measured_ber * num_bits),
        bits_tested=num_bits,
        frames=1,
        frames_detected=1,
    )
    return estimate.confidence_interval(z=_Z)


class TestTheoryAgreement:
    def test_every_scheme_has_golden_points(self):
        assert sorted(name for name, _, _ in _GOLDEN_POINTS) == sorted(
            available_schemes()
        )

    @pytest.mark.parametrize(
        "name,snr_points,mode",
        _GOLDEN_POINTS,
        ids=[name for name, _, _ in _GOLDEN_POINTS],
    )
    def test_measured_matches_theory_within_wilson_ci(self, name, snr_points, mode):
        scheme = get_scheme(name)
        for snr_db in snr_points:
            theory = scheme.theoretical_ber(snr_db)
            measured = awgn_symbol_ber(scheme, snr_db, num_bits=_NUM_BITS, seed=_SEED)
            low, high = _wilson_interval(measured, _NUM_BITS)
            if mode == "exact":
                assert low <= theory <= high, (
                    f"{name}@{snr_db}dB: theory {theory:.3e} outside "
                    f"Wilson[{low:.3e}, {high:.3e}] around measured {measured:.3e}"
                )
            else:  # union bound: theory upper-bounds truth, within a decade
                assert theory >= low, (
                    f"{name}@{snr_db}dB: bound {theory:.3e} below Wilson "
                    f"lower edge {low:.3e} of measured {measured:.3e}"
                )
                assert measured >= theory / 10.0, (
                    f"{name}@{snr_db}dB: bound {theory:.3e} more than a decade "
                    f"above measured {measured:.3e}"
                )


class TestFrozenFingerprints:
    """Exact values pinned at seed 0 — any numerics drift fails here."""

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "fused"])
    def test_office_link_noisy_point_fingerprint(self, backend):
        """Full waveform chain at 13 m (non-zero errors: drift-sensitive).

        Runs under the serial reference, the chunked vectorized kernel
        AND the whole-budget fused program — all three are contracted
        bit-identical, so they share one frozen fingerprint.
        """
        config = LinkConfig(distance_m=13.0, environment=Environment.typical_office())
        estimate = estimate_link_ber(
            config,
            target_errors=50,
            max_bits=24_576,
            bits_per_frame=2048,
            seed=0,
            backend=backend,
        )
        assert estimate == BerEstimate(
            bit_errors=18,
            bits_tested=24_576,
            frames=12,
            frames_detected=12,
            target_errors=50,
        ), f"office-link fingerprint drifted: {estimate}"

    def test_office_link_clean_point_fingerprint(self):
        """The paper's headline operating point (4 m) decodes error-free."""
        config = LinkConfig(distance_m=4.0, environment=Environment.typical_office())
        estimate = estimate_link_ber(
            config, target_errors=50, max_bits=8_192, bits_per_frame=2048, seed=0
        )
        assert estimate == BerEstimate(
            bit_errors=0,
            bits_tested=8_192,
            frames=4,
            frames_detected=4,
            target_errors=50,
        ), f"clean-link fingerprint drifted: {estimate}"

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "fused"])
    def test_rician_link_fingerprint(self, backend):
        """Rician fading at 8 m: pins the per-frame channel-draw RNG order.

        Runs under **all bit-exact backends** — the vectorized and
        fused stochastic-channel kernels must reproduce the serial
        chain bit for bit (there is no serial fallback for fading
        configs any more).
        """
        config = LinkConfig(
            distance_m=8.0,
            rician_k_db=6.0,
            environment=Environment.typical_office(),
        )
        estimate = estimate_link_ber(
            config,
            target_errors=50,
            max_bits=24_576,
            bits_per_frame=2048,
            seed=0,
            backend=backend,
        )
        assert estimate == BerEstimate(
            bit_errors=30,
            bits_tested=24_576,
            frames=12,
            frames_detected=12,
            target_errors=50,
        ), f"rician fingerprint drifted ({backend}): {estimate}"

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "fused"])
    def test_blockage_link_fingerprint(self, backend):
        """Blockage window at the 4 m point: pins the gain-vector stage."""
        config = LinkConfig(
            distance_m=4.0,
            environment=Environment.typical_office(),
            blockage_events=(BlockageEvent(0.2e-4, 0.6e-4, 10.0),),
        )
        estimate = estimate_link_ber(
            config,
            target_errors=50,
            max_bits=24_576,
            bits_per_frame=2048,
            seed=0,
            backend=backend,
        )
        assert estimate == BerEstimate(
            bit_errors=1,
            bits_tested=24_576,
            frames=12,
            frames_detected=12,
            target_errors=50,
        ), f"blockage fingerprint drifted ({backend}): {estimate}"

    def test_awgn_waterfall_point_fingerprint(self):
        measured = awgn_symbol_ber(get_scheme("QPSK"), 8.0, num_bits=20_000, seed=0)
        assert measured == pytest.approx(0.00575, abs=0.0), (
            f"AWGN fingerprint drifted: {measured!r}"
        )


class TestBerEstimateContract:
    """The satellite fixes: z validation and the is_converged flag."""

    @pytest.mark.parametrize("z", [0.0, -1.96, float("nan"), float("inf")])
    def test_confidence_interval_rejects_bad_z(self, z):
        estimate = BerEstimate(bit_errors=5, bits_tested=1_000, frames=1, frames_detected=1)
        with pytest.raises(ValueError):
            estimate.confidence_interval(z=z)

    def test_nothing_tested_is_not_converged(self):
        estimate = BerEstimate(0, 0, 0, 0)
        assert estimate.ber == 0.0
        assert not estimate.is_converged

    def test_zero_errors_over_real_bits_differs_from_nothing_tested(self):
        tested = BerEstimate(0, 10_000, 5, 5, target_errors=None)
        untested = BerEstimate(0, 0, 0, 0, target_errors=None)
        assert tested.ber == untested.ber == 0.0
        assert tested.is_converged and not untested.is_converged

    def test_budget_exhausted_before_target_is_not_converged(self):
        estimate = BerEstimate(3, 10_000, 5, 5, target_errors=50)
        assert not estimate.is_converged

    def test_target_reached_is_converged(self):
        estimate = BerEstimate(50, 10_000, 5, 5, target_errors=50)
        assert estimate.is_converged

    def test_estimator_propagates_target(self):
        config = LinkConfig(distance_m=2.0)
        estimate = estimate_link_ber(
            config, target_errors=10, max_bits=4_096, bits_per_frame=2048
        )
        assert estimate.target_errors == 10
        # clean link, budget exhausted before 10 errors accumulate
        assert not estimate.is_converged
