"""Equivalence contract of the fused whole-budget backend.

The ``"fused"`` tier hands the entire remaining frame budget to one
:meth:`~repro.sim.batch.BatchLinkSimulator.simulate_point` array
program instead of re-entering Python per chunk.  Its contract is
**byte identity** with the serial reference: same RNG serial order per
frame, frame-exact early exit on ``target_errors``, invariant to chunk
sizes, block-growth schedules, executor schedules, and which bit-exact
tier warmed the cache.  These tests pin every face of that contract.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.link import LinkConfig
from repro.sim.batch import BatchLinkSimulator
from repro.sim.cache import ResultCache
from repro.sim.executor import BerSweepTask, SweepExecutor
from repro.sim.monte_carlo import (
    BIT_EXACT_BACKENDS,
    LinkBerAccumulator,
    estimate_link_ber,
)

_NOISY = LinkConfig(distance_m=13.0, environment=Environment.typical_office())
_RICIAN = LinkConfig(
    distance_m=8.0, rician_k_db=6.0, environment=Environment.typical_office()
)


def _estimate(config, backend, *, chunk_frames=1, target_errors=50,
              max_bits=24_576):
    return estimate_link_ber(
        config,
        target_errors=target_errors,
        max_bits=max_bits,
        bits_per_frame=2048,
        seed=0,
        chunk_frames=chunk_frames,
        backend=backend,
    )


class TestByteIdentity:
    @pytest.mark.parametrize("config", [_NOISY, _RICIAN], ids=["awgn", "rician"])
    def test_fused_equals_serial_and_vectorized(self, config):
        serial = _estimate(config, "serial")
        fused = _estimate(config, "fused")
        vectorized = _estimate(config, "vectorized", chunk_frames=4)
        assert fused == serial
        assert fused == vectorized

    @pytest.mark.parametrize("chunk_frames", [1, 3, 7, 64])
    def test_fused_ignores_chunk_size(self, chunk_frames):
        """chunk_frames is a no-op for the whole-budget program."""
        baseline = _estimate(_NOISY, "fused", chunk_frames=1)
        assert _estimate(_NOISY, "fused", chunk_frames=chunk_frames) == baseline

    def test_early_exit_is_frame_exact(self):
        """A tiny error target must stop fused on the same frame as serial."""
        serial = _estimate(_NOISY, "serial", target_errors=2)
        fused = _estimate(_NOISY, "fused", target_errors=2)
        assert fused == serial
        assert fused.bit_errors >= 2
        # stopped early: budget would have allowed 12 frames
        assert fused.frames < 12

    @pytest.mark.parametrize("start_block", [1, 2, 5, 16, 128])
    def test_block_growth_schedule_invariant(self, start_block):
        """simulate_point results do not depend on the block schedule.

        Overshoot frames inside a block consume RNG state the serial
        path would never draw, but are discarded before absorption —
        the accumulated counts must not see them.
        """
        simulator = BatchLinkSimulator(_NOISY, num_payload_bits=2048)
        baseline = simulator.simulate_point(
            np.random.default_rng(5), errors_needed=20, max_frames=12,
            start_block=16,
        )
        got = simulator.simulate_point(
            np.random.default_rng(5), errors_needed=20, max_frames=12,
            start_block=start_block,
        )
        assert np.array_equal(got[0], baseline[0])
        assert np.array_equal(got[1], baseline[1])


class TestAccumulatorReplay:
    def test_accumulator_matches_driver(self):
        """Stepping the accumulator chunk by chunk equals one-shot fused."""
        accumulator = LinkBerAccumulator(
            _NOISY,
            target_errors=50,
            max_bits=24_576,
            bits_per_frame=2048,
            seed=0,
            backend="fused",
        )
        while not accumulator.done:
            accumulator = accumulator.advance()
        assert accumulator.estimate() == _estimate(_NOISY, "fused")

    def test_pickle_roundtrip_mid_flight(self):
        """Fused accumulators stay picklable for the process backend."""
        accumulator = LinkBerAccumulator(
            _NOISY,
            target_errors=2,
            max_bits=24_576,
            bits_per_frame=2048,
            seed=0,
            backend="fused",
        )
        revived = pickle.loads(pickle.dumps(accumulator))
        while not revived.done:
            revived = revived.advance()
        assert revived.estimate() == _estimate(_NOISY, "fused", target_errors=2)


class TestCacheKeyspace:
    def _task(self, backend, chunk_frames=1):
        return BerSweepTask(
            config=_NOISY,
            target_errors=20,
            max_bits=8_192,
            bits_per_frame=2048,
            chunk_frames=chunk_frames,
            link_backend=backend,
        )

    def test_bit_exact_tiers_share_cache_entries(self):
        """serial/vectorized/fused (any chunking) → one cache key."""
        keys = {
            pickle.dumps(self._task(backend, chunk).cache_parts(13.0))
            for backend in BIT_EXACT_BACKENDS
            for chunk in (1, 8)
        }
        assert len(keys) == 1

    def test_fast_tier_has_its_own_keyspace(self):
        exact = pickle.dumps(self._task("serial").cache_parts(13.0))
        fast = pickle.dumps(self._task("fast").cache_parts(13.0))
        assert exact != fast

    def test_cache_warmed_by_serial_serves_fused(self, tmp_path):
        """Cross-backend cache replay is byte-identical."""
        values = [12.0, 13.0]
        cache = ResultCache(tmp_path / "cache")
        cold = SweepExecutor("serial", cache=cache).run(
            values, self._task("serial"), seed=0
        )
        warm = SweepExecutor("serial", cache=cache).run(
            values, self._task("fused"), seed=0
        )
        assert warm.cache_hits == len(values)
        assert [pickle.dumps(p.metric) for p in cold.points] == [
            pickle.dumps(p.metric) for p in warm.points
        ]

    @pytest.mark.parametrize("schedule", ["uniform", "adaptive"])
    def test_schedules_agree_under_fused(self, schedule):
        """Uniform and adaptive schedules return identical fused points."""
        values = [12.0, 13.0]
        report = SweepExecutor("serial", schedule=schedule).run(
            values, self._task("fused"), seed=0
        )
        baseline = SweepExecutor("serial").run(
            values, self._task("serial"), seed=0
        )
        assert [p.metric for p in report.points] == [
            p.metric for p in baseline.points
        ]
