"""Tests for repro.dsp.signal."""

import numpy as np
import pytest

from repro.dsp.signal import Signal


class TestConstruction:
    def test_real_input_promoted_to_complex(self):
        sig = Signal(np.ones(4), 1e6)
        assert np.issubdtype(sig.samples.dtype, np.complexfloating)

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError, match="1-D"):
            Signal(np.ones((2, 2)), 1e6)

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_non_positive_rate(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            Signal(np.ones(4), rate)

    def test_zeros_constructor(self):
        sig = Signal.zeros(10, 1e6)
        assert sig.num_samples == 10
        assert sig.power() == 0.0

    def test_zeros_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Signal.zeros(-1, 1e6)


class TestTone:
    def test_tone_length_and_power(self):
        sig = Signal.tone(frequency=1e3, sample_rate=1e6, duration=1e-3)
        assert sig.num_samples == 1000
        assert sig.power() == pytest.approx(1.0)

    def test_tone_frequency_is_correct(self):
        sig = Signal.tone(frequency=5e3, sample_rate=1e6, duration=2e-3)
        # instantaneous frequency from phase increments
        phase = np.unwrap(np.angle(sig.samples))
        freq = np.diff(phase) * sig.sample_rate / (2 * np.pi)
        assert np.allclose(freq, 5e3)

    def test_negative_frequency_tone(self):
        sig = Signal.tone(frequency=-5e3, sample_rate=1e6, duration=1e-3)
        phase = np.unwrap(np.angle(sig.samples))
        freq = np.diff(phase) * sig.sample_rate / (2 * np.pi)
        assert np.allclose(freq, -5e3)

    def test_tone_amplitude_and_phase(self):
        sig = Signal.tone(0.0, 1e6, 1e-5, amplitude=2.0, phase=np.pi / 2)
        assert sig.samples[0] == pytest.approx(2j)


class TestFromSymbols:
    def test_zero_order_hold_repeats(self):
        sig = Signal.from_symbols(np.array([1, -1]), symbol_rate=1e6, samples_per_symbol=3)
        assert np.allclose(sig.samples, [1, 1, 1, -1, -1, -1])

    def test_sample_rate_is_symbolrate_times_sps(self):
        sig = Signal.from_symbols(np.array([1.0]), 2e6, 4)
        assert sig.sample_rate == pytest.approx(8e6)

    def test_rejects_zero_sps(self):
        with pytest.raises(ValueError):
            Signal.from_symbols(np.array([1.0]), 1e6, 0)


class TestBasicProperties:
    def test_duration(self):
        sig = Signal.zeros(100, 1e3)
        assert sig.duration == pytest.approx(0.1)

    def test_time_vector_starts_at_zero_with_step_1_over_fs(self):
        sig = Signal.zeros(3, 10.0)
        assert np.allclose(sig.time_vector(), [0.0, 0.1, 0.2])

    def test_power_of_unit_constant(self):
        sig = Signal(np.ones(8), 1e6)
        assert sig.power() == pytest.approx(1.0)

    def test_power_of_empty_signal_is_zero(self):
        assert Signal.zeros(0, 1e6).power() == 0.0

    def test_energy_equals_power_times_duration(self):
        sig = Signal(2.0 * np.ones(100), 1e3)
        assert sig.energy() == pytest.approx(sig.power() * sig.duration)

    def test_rms_is_sqrt_power(self):
        sig = Signal(3.0 * np.ones(5), 1e6)
        assert sig.rms() == pytest.approx(3.0)

    def test_len_matches_num_samples(self):
        assert len(Signal.zeros(17, 1e6)) == 17


class TestTransforms:
    def test_scale_by_complex_factor(self):
        sig = Signal(np.ones(4), 1e6).scale(2j)
        assert np.allclose(sig.samples, 2j * np.ones(4))

    def test_frequency_shift_moves_tone(self):
        sig = Signal.tone(0.0, 1e6, 1e-3)
        shifted = sig.frequency_shift(10e3)
        phase = np.unwrap(np.angle(shifted.samples))
        freq = np.diff(phase) * sig.sample_rate / (2 * np.pi)
        assert np.allclose(freq, 10e3)

    def test_frequency_shift_preserves_power(self):
        sig = Signal.tone(1e3, 1e6, 1e-3)
        assert sig.frequency_shift(7e3).power() == pytest.approx(sig.power())

    def test_integer_delay_prepends_zeros(self):
        sig = Signal(np.array([1.0, 2.0]), 10.0)
        delayed = sig.delay(0.2)  # two samples
        assert np.allclose(delayed.samples[:2], 0.0)
        assert np.allclose(delayed.samples[2:], [1.0, 2.0])

    def test_fractional_delay_shifts_tone_phase(self):
        fs = 1e6
        sig = Signal.tone(frequency=1e4, sample_rate=fs, duration=1e-3)
        delayed = sig.delay(0.5 / fs)
        expected_phase = -2 * np.pi * 1e4 * 0.5 / fs
        # compare mid-signal samples (away from wrap effects)
        ratio = delayed.samples[100] / sig.samples[100]
        assert np.angle(ratio) == pytest.approx(expected_phase, abs=1e-2)

    def test_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            Signal.zeros(4, 1e6).delay(-1e-6)

    def test_slice_time(self):
        sig = Signal(np.arange(10, dtype=float), 10.0)
        part = sig.slice_time(0.2, 0.5)
        assert np.allclose(part.samples.real, [2, 3, 4])

    def test_slice_time_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            Signal.zeros(4, 1e6).slice_time(1.0, 0.5)

    def test_append_concatenates(self):
        a = Signal(np.ones(2), 1e6)
        b = Signal(2 * np.ones(3), 1e6)
        assert a.append(b).num_samples == 5

    def test_append_rejects_rate_mismatch(self):
        a = Signal(np.ones(2), 1e6)
        b = Signal(np.ones(2), 2e6)
        with pytest.raises(ValueError, match="sample rates differ"):
            a.append(b)

    def test_pad(self):
        sig = Signal(np.ones(2), 1e6).pad(1, 3)
        assert sig.num_samples == 6
        assert sig.samples[0] == 0 and np.all(sig.samples[3:] == 0)

    def test_pad_rejects_negative(self):
        with pytest.raises(ValueError):
            Signal.zeros(2, 1e6).pad(-1, 0)


class TestAddition:
    def test_add_equal_length(self):
        a = Signal(np.ones(3), 1e6)
        b = Signal(2 * np.ones(3), 1e6)
        assert np.allclose((a + b).samples, 3.0)

    def test_add_pads_shorter_operand(self):
        a = Signal(np.ones(2), 1e6)
        b = Signal(np.ones(4), 1e6)
        total = a + b
        assert np.allclose(total.samples, [2, 2, 1, 1])

    def test_add_rejects_rate_mismatch(self):
        with pytest.raises(ValueError):
            Signal(np.ones(2), 1e6) + Signal(np.ones(2), 2e6)
