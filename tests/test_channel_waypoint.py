"""Tests for repro.channel.waypoint."""

import math

import numpy as np
import pytest

from repro.channel.waypoint import RandomWaypointModel, TracePoint


class TestTracePoint:
    def test_polar_conversion(self):
        point = TracePoint(time_s=0.0, x_m=3.0, y_m=4.0)
        assert point.distance_m == pytest.approx(5.0)
        assert point.azimuth_deg == pytest.approx(math.degrees(math.atan2(4, 3)))


class TestModelValidation:
    def test_rejects_origin_in_area(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(x_min=0.0)

    def test_rejects_degenerate_area(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(x_min=2.0, x_max=2.0)

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(speed_min_m_s=2.0, speed_max_m_s=1.0)


class TestTraceGeneration:
    def test_length_and_timing(self):
        model = RandomWaypointModel()
        trace = model.generate_trace(10.0, 0.5, rng=0)
        assert len(trace) == 21
        assert trace[0].time_s == 0.0
        assert trace[-1].time_s == pytest.approx(10.0)

    def test_stays_inside_area(self):
        model = RandomWaypointModel(x_min=1.0, x_max=5.0, y_min=-2.0, y_max=2.0)
        trace = model.generate_trace(60.0, 0.25, rng=1)
        for point in trace:
            assert 1.0 - 1e-9 <= point.x_m <= 5.0 + 1e-9
            assert -2.0 - 1e-9 <= point.y_m <= 2.0 + 1e-9

    def test_speed_bounded(self):
        model = RandomWaypointModel(speed_min_m_s=0.5, speed_max_m_s=1.5, pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=2)
        for a, b in zip(trace, trace[1:]):
            step = math.hypot(b.x_m - a.x_m, b.y_m - a.y_m)
            assert step <= 1.5 * 0.5 + 1e-6

    def test_actually_moves(self):
        model = RandomWaypointModel(pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=3)
        distances = [p.distance_m for p in trace]
        assert max(distances) - min(distances) > 0.5

    def test_deterministic_given_seed(self):
        model = RandomWaypointModel()
        a = model.generate_trace(5.0, 0.5, rng=4)
        b = model.generate_trace(5.0, 0.5, rng=4)
        assert a == b

    def test_rejects_bad_args(self):
        model = RandomWaypointModel()
        with pytest.raises(ValueError):
            model.generate_trace(0.0, 0.5)
        with pytest.raises(ValueError):
            model.generate_trace(1.0, 0.0)


class TestRadialVelocity:
    def test_consistent_with_distance_derivative(self):
        model = RandomWaypointModel(pause_max_s=0.0)
        trace = model.generate_trace(20.0, 0.5, rng=5)
        for index in (1, 5, 20):
            v = model.radial_velocity_at(trace, index)
            expected = (
                trace[index].distance_m - trace[index - 1].distance_m
            ) / (trace[index].time_s - trace[index - 1].time_s)
            assert v == pytest.approx(expected)

    def test_bounded_by_speed(self):
        model = RandomWaypointModel(speed_max_m_s=1.5, pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=6)
        for index in range(len(trace)):
            assert abs(model.radial_velocity_at(trace, index)) <= 1.5 + 1e-6

    def test_index_validation(self):
        model = RandomWaypointModel()
        trace = model.generate_trace(2.0, 0.5, rng=7)
        with pytest.raises(ValueError):
            model.radial_velocity_at(trace, 99)


class TestLinkIntegration:
    def test_trace_drives_link_epochs(self):
        """A mobility trace plugs straight into LinkConfig epochs."""
        from repro.channel.environment import Environment
        from repro.core.link import LinkConfig, simulate_link

        model = RandomWaypointModel(x_min=1.5, x_max=5.0, y_min=-1.5, y_max=1.5)
        trace = model.generate_trace(5.0, 1.0, rng=8)
        successes = 0
        for index, point in enumerate(trace):
            config = LinkConfig(
                distance_m=point.distance_m,
                incidence_angle_deg=max(-85.0, min(85.0, point.azimuth_deg)),
                environment=Environment.typical_office(),
                radial_velocity_m_s=model.radial_velocity_at(trace, index),
            )
            result = simulate_link(config, num_payload_bits=256, rng=index)
            successes += int(result.frame_success)
        assert successes >= len(trace) - 1  # short range: nearly always closes
