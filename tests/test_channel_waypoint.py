"""Tests for repro.channel.waypoint."""

import math

import numpy as np
import pytest

from repro.channel.waypoint import RandomWaypointModel, TracePoint


class TestTracePoint:
    def test_polar_conversion(self):
        point = TracePoint(time_s=0.0, x_m=3.0, y_m=4.0)
        assert point.distance_m == pytest.approx(5.0)
        assert point.azimuth_deg == pytest.approx(math.degrees(math.atan2(4, 3)))


class TestModelValidation:
    def test_rejects_origin_in_area(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(x_min=0.0)

    def test_rejects_degenerate_area(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(x_min=2.0, x_max=2.0)

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            RandomWaypointModel(speed_min_m_s=2.0, speed_max_m_s=1.0)


class TestTraceGeneration:
    def test_length_and_timing(self):
        model = RandomWaypointModel()
        trace = model.generate_trace(10.0, 0.5, rng=0)
        assert len(trace) == 21
        assert trace[0].time_s == 0.0
        assert trace[-1].time_s == pytest.approx(10.0)

    def test_stays_inside_area(self):
        model = RandomWaypointModel(x_min=1.0, x_max=5.0, y_min=-2.0, y_max=2.0)
        trace = model.generate_trace(60.0, 0.25, rng=1)
        for point in trace:
            assert 1.0 - 1e-9 <= point.x_m <= 5.0 + 1e-9
            assert -2.0 - 1e-9 <= point.y_m <= 2.0 + 1e-9

    def test_speed_bounded(self):
        model = RandomWaypointModel(speed_min_m_s=0.5, speed_max_m_s=1.5, pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=2)
        for a, b in zip(trace, trace[1:]):
            step = math.hypot(b.x_m - a.x_m, b.y_m - a.y_m)
            assert step <= 1.5 * 0.5 + 1e-6

    def test_actually_moves(self):
        model = RandomWaypointModel(pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=3)
        distances = [p.distance_m for p in trace]
        assert max(distances) - min(distances) > 0.5

    def test_deterministic_given_seed(self):
        model = RandomWaypointModel()
        a = model.generate_trace(5.0, 0.5, rng=4)
        b = model.generate_trace(5.0, 0.5, rng=4)
        assert a == b

    def test_rejects_bad_args(self):
        model = RandomWaypointModel()
        with pytest.raises(ValueError):
            model.generate_trace(0.0, 0.5)
        with pytest.raises(ValueError):
            model.generate_trace(1.0, 0.0)


class TestRadialVelocity:
    def test_consistent_with_distance_derivative(self):
        model = RandomWaypointModel(pause_max_s=0.0)
        trace = model.generate_trace(20.0, 0.5, rng=5)
        for index in (1, 5, 20):
            v = model.radial_velocity_at(trace, index)
            expected = (
                trace[index].distance_m - trace[index - 1].distance_m
            ) / (trace[index].time_s - trace[index - 1].time_s)
            assert v == pytest.approx(expected)

    def test_bounded_by_speed(self):
        model = RandomWaypointModel(speed_max_m_s=1.5, pause_max_s=0.0)
        trace = model.generate_trace(30.0, 0.5, rng=6)
        for index in range(len(trace)):
            assert abs(model.radial_velocity_at(trace, index)) <= 1.5 + 1e-6

    def test_index_validation(self):
        model = RandomWaypointModel()
        trace = model.generate_trace(2.0, 0.5, rng=7)
        with pytest.raises(ValueError):
            model.radial_velocity_at(trace, 99)


class TestPinnedStart:
    def test_start_xy_is_respected(self):
        model = RandomWaypointModel()
        trace = model.generate_trace(5.0, 0.5, rng=10, start_xy=(2.5, 1.0))
        assert trace[0].x_m == 2.5
        assert trace[0].y_m == 1.0

    def test_start_xy_outside_area_is_clamped(self):
        model = RandomWaypointModel(x_min=1.0, x_max=5.0, y_min=-2.0, y_max=2.0)
        trace = model.generate_trace(5.0, 0.5, rng=11, start_xy=(99.0, -99.0))
        assert trace[0].x_m == 5.0
        assert trace[0].y_m == -2.0

    def test_pinned_start_is_deterministic(self):
        model = RandomWaypointModel()
        a = model.generate_trace(5.0, 0.5, rng=12, start_xy=(3.0, 0.0))
        b = model.generate_trace(5.0, 0.5, rng=12, start_xy=(3.0, 0.0))
        assert a == b

    def test_pinned_start_skips_exactly_the_start_draws(self):
        """With start_xy the two random-start uniforms are skipped and
        the rest of the draw order is unchanged: hand the model an rng
        already advanced past those two draws plus the position they
        would have produced, and the pinned walk reproduces the free
        walk exactly."""
        model = RandomWaypointModel(pause_max_s=0.0)
        free = model.generate_trace(40.0, 0.5, rng=13)
        rng = np.random.default_rng(13)
        start = (
            float(rng.uniform(model.x_min, model.x_max)),
            float(rng.uniform(model.y_min, model.y_max)),
        )
        assert start == (free[0].x_m, free[0].y_m)  # those were the start draws
        pinned = model.generate_trace(40.0, 0.5, rng=rng, start_xy=start)
        assert pinned == free
        # and a fresh-seed pinned walk spends its first two draws on the
        # first waypoint instead: it must pass near that predicted point
        rng2 = np.random.default_rng(13)
        waypoint = (
            float(rng2.uniform(model.x_min, model.x_max)),
            float(rng2.uniform(model.y_min, model.y_max)),
        )
        walk = model.generate_trace(40.0, 0.5, rng=13, start_xy=(4.0, 0.0))
        closest = min(
            math.hypot(p.x_m - waypoint[0], p.y_m - waypoint[1]) for p in walk
        )
        assert closest < 1.5 * 0.5 + 1e-6  # within one sample step


class TestZeroVelocity:
    def test_static_trace_has_zero_radial_velocity(self):
        model = RandomWaypointModel()
        trace = [
            TracePoint(time_s=float(k) * 0.5, x_m=3.0, y_m=1.0)
            for k in range(8)
        ]
        for index in range(len(trace)):
            assert model.radial_velocity_at(trace, index) == 0.0

    def test_single_point_trace_is_zero(self):
        model = RandomWaypointModel()
        assert model.radial_velocity_at(
            [TracePoint(time_s=0.0, x_m=2.0, y_m=0.0)], 0
        ) == 0.0

    def test_coincident_timestamps_are_zero_not_inf(self):
        model = RandomWaypointModel()
        trace = [
            TracePoint(time_s=1.0, x_m=2.0, y_m=0.0),
            TracePoint(time_s=1.0, x_m=3.0, y_m=0.0),
        ]
        assert model.radial_velocity_at(trace, 1) == 0.0


class TestCellBoundaryCrossing:
    def test_exact_boundary_tie_breaks_to_lowest_ap_id(self):
        """A trajectory sample landing exactly on the perpendicular
        bisector between two APs sees equal SINR; association must pick
        the lower AP id deterministically (np.argmax first-occurrence),
        never an arbitrary float-noise winner."""
        from repro.net import Deployment, MultiAPConfig

        d = Deployment(
            MultiAPConfig(grid_rows=1, grid_cols=2, ap_spacing_m=8.0)
        )
        # APs at x = 4 and x = 12: the boundary is x = 8, any y
        boundary_x = 8.0
        for y in (1.0, 4.0, 7.5):
            snr = d.snr_matrix(np.array([boundary_x]), np.array([y]))[0]
            assert snr[0] == snr[1]
            assert int(np.argmax(snr)) == 0

    def test_crossing_trajectory_flips_the_winner_once(self):
        from repro.net import Deployment, MultiAPConfig

        d = Deployment(
            MultiAPConfig(grid_rows=1, grid_cols=2, ap_spacing_m=8.0)
        )
        xs = np.linspace(5.0, 11.0, 25)  # walk through the boundary
        winners = [
            int(np.argmax(d.snr_matrix(np.array([x]), np.array([4.0]))[0]))
            for x in xs
        ]
        assert winners[0] == 0 and winners[-1] == 1
        flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
        assert flips == 1


class TestLinkIntegration:
    def test_trace_drives_link_epochs(self):
        """A mobility trace plugs straight into LinkConfig epochs."""
        from repro.channel.environment import Environment
        from repro.core.link import LinkConfig, simulate_link

        model = RandomWaypointModel(x_min=1.5, x_max=5.0, y_min=-1.5, y_max=1.5)
        trace = model.generate_trace(5.0, 1.0, rng=8)
        successes = 0
        for index, point in enumerate(trace):
            config = LinkConfig(
                distance_m=point.distance_m,
                incidence_angle_deg=max(-85.0, min(85.0, point.azimuth_deg)),
                environment=Environment.typical_office(),
                radial_velocity_m_s=model.radial_velocity_at(trace, index),
            )
            result = simulate_link(config, num_payload_bits=256, rng=index)
            successes += int(result.frame_success)
        assert successes >= len(trace) - 1  # short range: nearly always closes
