"""Unit tests for the reusable statistical-equivalence helpers.

These helpers gate the fast-tier acceptance suite, so they get their
own tests: a buggy interval (too narrow, off-centre) would let a broken
fast tier pass, and an over-eager difference test would flake honest
runs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from tests.stat_equiv import (
    proportions_differ,
    two_proportion_z,
    wilson_ci_overlap,
    wilson_interval,
)


class TestWilsonInterval:
    def test_matches_ber_estimate_interval(self):
        """Same algebra as the in-tree BerEstimate Wilson CI."""
        from repro.sim.monte_carlo import BerEstimate

        est = BerEstimate(
            bit_errors=37, bits_tested=5000, frames=10, frames_detected=10
        )
        assert wilson_interval(37, 5000) == est.confidence_interval()

    def test_contains_point_estimate(self):
        for s, n in [(0, 50), (1, 50), (25, 50), (50, 50), (3, 10_000)]:
            lo, hi = wilson_interval(s, n)
            assert lo <= s / n <= hi
            assert 0.0 <= lo <= hi <= 1.0

    def test_zero_errors_has_positive_upper_edge(self):
        """Unlike Wald, Wilson never collapses 0/n to a point."""
        lo, hi = wilson_interval(0, 1000)
        assert lo == 0.0
        assert hi > 0.0

    def test_shrinks_with_sample_size(self):
        narrow = wilson_interval(50, 10_000)
        wide = wilson_interval(5, 1000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_known_value(self):
        # Hand-checked 95% Wilson interval for 5/100.
        lo, hi = wilson_interval(5, 100)
        assert lo == pytest.approx(0.02152, abs=2e-4)
        assert hi == pytest.approx(0.11183, abs=2e-4)

    def test_rejects_bad_counts_and_quantiles(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=0.0)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=math.inf)


class TestWilsonOverlap:
    def test_same_counts_overlap(self):
        assert wilson_ci_overlap(10, 1000, 10, 1000)

    def test_symmetric(self):
        args = (12, 900, 30, 1100)
        assert wilson_ci_overlap(*args) == wilson_ci_overlap(
            args[2], args[3], args[0], args[1]
        )

    def test_clearly_different_rates_do_not_overlap(self):
        assert not wilson_ci_overlap(10, 10_000, 500, 10_000)

    def test_zero_trials_overlaps_everything(self):
        assert wilson_ci_overlap(0, 0, 9999, 10_000)

    def test_shared_rate_overlaps_at_realistic_counts(self):
        """Two honest estimators of one rate overlap (deterministic draws)."""
        rng = np.random.default_rng(42)
        p = 0.01
        for _ in range(50):
            a = int(rng.binomial(20_000, p))
            b = int(rng.binomial(20_000, p))
            assert wilson_ci_overlap(a, 20_000, b, 20_000)


class TestTwoProportion:
    def test_identical_proportions_give_zero(self):
        assert two_proportion_z(10, 1000, 10, 1000) == 0.0

    def test_degenerate_pooled_rates_give_zero(self):
        assert two_proportion_z(0, 500, 0, 700) == 0.0
        assert two_proportion_z(500, 500, 700, 700) == 0.0

    def test_antisymmetric(self):
        z = two_proportion_z(30, 1000, 60, 1000)
        assert z == pytest.approx(-two_proportion_z(60, 1000, 30, 1000))

    def test_known_value(self):
        # 30/1000 vs 60/1000: pooled p=0.045, z ≈ -3.236 (hand-checked).
        z = two_proportion_z(30, 1000, 60, 1000)
        assert z == pytest.approx(-3.236, abs=5e-3)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            two_proportion_z(0, 0, 5, 10)

    def test_differ_detects_real_gap(self):
        assert proportions_differ(10, 10_000, 500, 10_000)

    def test_differ_accepts_equal_rates(self):
        rng = np.random.default_rng(7)
        p = 0.02
        for _ in range(50):
            a = int(rng.binomial(30_000, p))
            b = int(rng.binomial(30_000, p))
            assert not proportions_differ(a, 30_000, b, 30_000)

    def test_differ_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            proportions_differ(1, 10, 1, 10, alpha=0.0)
        with pytest.raises(ValueError):
            proportions_differ(1, 10, 1, 10, alpha=1.0)
