"""Tests for repro.core.arq."""

import numpy as np
import pytest

from repro.core.arq import (
    ArqAnalysis,
    StopAndWaitSession,
    frame_success_probability,
)


class TestFrameSuccessProbability:
    def test_zero_ber_always_succeeds(self):
        assert frame_success_probability(0.0, 1000) == 1.0

    def test_known_value(self):
        assert frame_success_probability(1e-3, 1000) == pytest.approx(
            (1 - 1e-3) ** 1000
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            frame_success_probability(-0.1, 10)
        with pytest.raises(ValueError):
            frame_success_probability(0.1, 0)


class TestArqAnalysis:
    def test_no_retries_delivery_is_one_minus_fer(self):
        analysis = ArqAnalysis(frame_error_rate=0.2, max_transmissions=1)
        assert analysis.delivery_probability() == pytest.approx(0.8)
        assert analysis.expected_transmissions() == pytest.approx(1.0)

    def test_retries_raise_delivery(self):
        one = ArqAnalysis(0.3, 1).delivery_probability()
        four = ArqAnalysis(0.3, 4).delivery_probability()
        assert four > one
        assert four == pytest.approx(1 - 0.3**4)

    def test_expected_transmissions_geometric_limit(self):
        # with a huge retry budget, E[tx] -> 1/(1-p)
        analysis = ArqAnalysis(0.3, 200)
        assert analysis.expected_transmissions() == pytest.approx(1 / 0.7, rel=1e-6)

    def test_goodput_fraction_bounds(self):
        for fer in (0.0, 0.2, 0.8):
            for budget in (1, 3, 8):
                g = ArqAnalysis(fer, budget).goodput_fraction()
                assert 0.0 < g <= 1.0

    def test_perfect_channel_goodput_one(self):
        assert ArqAnalysis(0.0, 5).goodput_fraction() == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ArqAnalysis(1.0, 3)
        with pytest.raises(ValueError):
            ArqAnalysis(0.1, 0)


class TestStopAndWaitSession:
    def test_perfect_oracle_delivers_everything(self):
        session = StopAndWaitSession(lambda attempt, rng: True, max_transmissions=3)
        session.send_frames(50, rng=0)
        assert session.delivered == 50
        assert session.abandoned == 0
        assert session.transmissions == 50
        assert session.delivery_rate == 1.0

    def test_always_failing_oracle_abandons(self):
        session = StopAndWaitSession(lambda attempt, rng: False, max_transmissions=3)
        session.send_frames(10, rng=0)
        assert session.delivered == 0
        assert session.abandoned == 10
        assert session.transmissions == 30

    def test_bernoulli_oracle_matches_analysis(self):
        fer = 0.4
        session = StopAndWaitSession(
            lambda attempt, rng: rng.random() > fer, max_transmissions=4
        )
        session.send_frames(5000, rng=1)
        analysis = ArqAnalysis(fer, 4)
        assert session.delivery_rate == pytest.approx(
            analysis.delivery_probability(), abs=0.02
        )
        assert session.goodput_fraction == pytest.approx(
            analysis.goodput_fraction(), abs=0.02
        )

    def test_retry_succeeds_second_attempt(self):
        session = StopAndWaitSession(
            lambda attempt, rng: attempt == 1, max_transmissions=2
        )
        session.send_frames(5, rng=0)
        assert session.delivered == 5
        assert session.transmissions == 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StopAndWaitSession(lambda a, r: True, max_transmissions=0)
        session = StopAndWaitSession(lambda a, r: True)
        with pytest.raises(ValueError):
            session.send_frames(0)

    def test_waveform_level_oracle(self):
        """Wire the ARQ loop to the real link simulator."""
        from repro.core.link import LinkConfig, simulate_link

        config = LinkConfig(distance_m=12.5)  # approaching the QPSK cliff

        def oracle(attempt: int, rng: np.random.Generator) -> bool:
            return simulate_link(config, num_payload_bits=2048, rng=rng).frame_success

        session = StopAndWaitSession(oracle, max_transmissions=3)
        session.send_frames(8, rng=2)
        # the link is lossy here, so some retries happen; the budget
        # still delivers a clear majority of frames
        assert session.delivery_rate >= 0.6
        assert session.transmissions >= 8
