"""Tests for repro.dsp.pulse."""

import numpy as np
import pytest

from repro.dsp.pulse import (
    matched_filter,
    raised_cosine_taps,
    rectangular_taps,
    root_raised_cosine_taps,
    shape_symbols,
)
from repro.dsp.signal import Signal


class TestRectangular:
    def test_unit_energy(self):
        taps = rectangular_taps(8)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_rejects_zero_sps(self):
        with pytest.raises(ValueError):
            rectangular_taps(0)


class TestRaisedCosine:
    def test_unit_energy(self):
        taps = raised_cosine_taps(8, 0.35)
        assert np.linalg.norm(taps) == pytest.approx(1.0)

    def test_nyquist_zero_crossings(self):
        # RC pulse crosses zero at every non-zero symbol instant.
        sps = 8
        taps = raised_cosine_taps(sps, 0.35, span_symbols=10)
        centre = taps.size // 2
        for k in range(1, 5):
            assert abs(taps[centre + k * sps]) < 1e-3 * abs(taps[centre])

    def test_zero_rolloff_is_sinc(self):
        sps = 4
        taps = raised_cosine_taps(sps, 0.0, span_symbols=8)
        centre = taps.size // 2
        t = np.arange(-(taps.size // 2), taps.size // 2 + 1) / sps
        expected = np.sinc(t)
        expected = expected / np.linalg.norm(expected)
        assert np.allclose(taps, expected)
        assert np.argmax(taps) == centre

    def test_singular_point_handled(self):
        # rolloff such that 1/(2*rolloff) lands exactly on a sample
        taps = raised_cosine_taps(4, 0.5, span_symbols=8)
        assert np.all(np.isfinite(taps))

    @pytest.mark.parametrize("rolloff", [-0.1, 1.5])
    def test_rejects_bad_rolloff(self, rolloff):
        with pytest.raises(ValueError):
            raised_cosine_taps(8, rolloff)


class TestRootRaisedCosine:
    def test_unit_energy(self):
        taps = root_raised_cosine_taps(8, 0.35)
        assert np.linalg.norm(taps) == pytest.approx(1.0)

    def test_rrc_convolved_with_itself_is_nyquist(self):
        # RRC * RRC = RC: zero ISI at symbol instants.
        sps = 8
        taps = root_raised_cosine_taps(sps, 0.35, span_symbols=12)
        rc = np.convolve(taps, taps)
        centre = rc.size // 2
        peak = rc[centre]
        for k in range(1, 5):
            assert abs(rc[centre + k * sps]) < 1e-2 * peak

    def test_singular_points_finite(self):
        taps = root_raised_cosine_taps(4, 0.25, span_symbols=8)
        assert np.all(np.isfinite(taps))

    def test_zero_rolloff_finite(self):
        taps = root_raised_cosine_taps(8, 0.0)
        assert np.all(np.isfinite(taps))


class TestShapeAndMatch:
    def test_shape_output_length(self):
        symbols = np.array([1, -1, 1, 1], dtype=complex)
        taps = root_raised_cosine_taps(4, 0.35)
        sig = shape_symbols(symbols, taps, 4, 1e6)
        assert sig.num_samples == 16
        assert sig.sample_rate == pytest.approx(4e6)

    def test_symbol_peaks_at_expected_indices(self):
        symbols = np.array([1, 0, 0, 0, 1, 0, 0, 0], dtype=complex)
        taps = raised_cosine_taps(8, 0.35)
        sig = shape_symbols(symbols, taps, 8, 1e6)
        magnitude = np.abs(sig.samples)
        assert magnitude[0] == pytest.approx(np.max(magnitude[:4]), rel=1e-6)
        assert magnitude[32] > magnitude[36]

    def test_matched_filter_recovers_symbols(self, rng):
        sps = 8
        symbols = (2 * rng.integers(0, 2, 64) - 1).astype(complex)
        taps = root_raised_cosine_taps(sps, 0.35, span_symbols=10)
        shaped = shape_symbols(symbols, taps, sps, 1e6)
        matched = matched_filter(shaped, taps)
        decisions = np.sign(matched.samples[::sps].real)
        # edge symbols lose pulse tails; check the interior
        assert np.array_equal(decisions[2:-2], symbols[2:-2].real)

    def test_matched_filter_preserves_length(self):
        sig = Signal(np.ones(100), 1e6)
        taps = rectangular_taps(8)
        assert matched_filter(sig, taps).num_samples == 100
