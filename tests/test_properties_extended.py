"""Additional hypothesis property tests for the extension modules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arq import ArqAnalysis
from repro.core.convolutional import K7_CODE
from repro.core.inventory import QAlgorithm, SlotOutcome
from repro.core.tag import square_subcarrier_wave
from repro.dsp.goertzel import goertzel_bin
from repro.em.polarization import (
    polarization_loss,
    roundtrip_polarization_loss_db,
)

bits_multiple_of_one = st.lists(st.integers(0, 1), min_size=1, max_size=120).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


class TestConvolutionalProperties:
    @given(bits=bits_multiple_of_one)
    @settings(max_examples=30)
    def test_clean_round_trip_any_length(self, bits):
        assert np.array_equal(K7_CODE.decode_hard(K7_CODE.encode(bits)), bits)

    @given(bits=bits_multiple_of_one, position=st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_single_flip_always_corrected(self, bits, position):
        coded = K7_CODE.encode(bits)
        coded[position % coded.size] ^= 1
        assert np.array_equal(K7_CODE.decode_hard(coded), bits)

    @given(bits=bits_multiple_of_one, scale=st.floats(0.1, 100.0))
    @settings(max_examples=20)
    def test_soft_decode_scale_invariant(self, bits, scale):
        coded = K7_CODE.encode(bits)
        soft = (1.0 - 2.0 * coded) * scale
        assert np.array_equal(K7_CODE.decode_soft(soft), bits)


class TestArqProperties:
    @given(fer=st.floats(0.0, 0.95), budget=st.integers(1, 10))
    def test_delivery_probability_bounds(self, fer, budget):
        analysis = ArqAnalysis(fer, budget)
        assert 0.0 <= analysis.delivery_probability() <= 1.0

    @given(fer=st.floats(0.01, 0.9), budget=st.integers(1, 9))
    def test_extra_retry_never_hurts(self, fer, budget):
        a = ArqAnalysis(fer, budget)
        b = ArqAnalysis(fer, budget + 1)
        assert b.delivery_probability() >= a.delivery_probability()

    @given(fer=st.floats(0.0, 0.9), budget=st.integers(1, 10))
    def test_expected_transmissions_within_budget(self, fer, budget):
        analysis = ArqAnalysis(fer, budget)
        assert 1.0 <= analysis.expected_transmissions() <= budget + 1e-9


class TestQAlgorithmProperties:
    @given(
        q0=st.floats(0.0, 15.0),
        outcomes=st.lists(
            st.sampled_from(list(SlotOutcome)), min_size=0, max_size=200
        ),
    )
    def test_q_always_in_bounds(self, q0, outcomes):
        controller = QAlgorithm(q_float=q0)
        for outcome in outcomes:
            controller.update(outcome)
        assert 0.0 <= controller.q_float <= 15.0
        assert 0 <= controller.q <= 15


class TestSubcarrierWaveProperties:
    @given(
        num_samples=st.integers(16, 2048),
        ratio=st.integers(4, 64),
    )
    def test_integer_ratio_wave_is_balanced(self, num_samples, ratio):
        # when fs is an even multiple of 2*f the wave must be DC-free
        fs = 1e8
        frequency = fs / ratio
        num_samples = (num_samples // ratio) * ratio
        if num_samples == 0:
            return
        wave = square_subcarrier_wave(num_samples, fs, frequency)
        if ratio % 2 == 0:
            assert abs(np.sum(wave)) < 1e-9
        assert set(np.unique(wave)) <= {-1.0, 1.0}

    @given(num_samples=st.integers(1, 512), frequency=st.floats(1e5, 2e7))
    def test_wave_squared_is_one(self, num_samples, frequency):
        wave = square_subcarrier_wave(num_samples, 1e8, frequency)
        assert np.allclose(wave * wave, 1.0)


class TestGoertzelProperties:
    @given(
        seed=st.integers(0, 2**31),
        size=st.integers(4, 256),
        bin_index=st.integers(0, 64),
    )
    @settings(max_examples=30)
    def test_matches_fft_on_bin_frequencies(self, seed, size, bin_index):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(size) + 1j * rng.standard_normal(size)
        k = bin_index % size
        freq = k / size
        if freq >= 0.5:
            freq -= 1.0
        direct = np.fft.fft(x)[k]
        assert goertzel_bin(x, freq) == pytest.approx(direct, abs=1e-6 * size)


class TestPolarizationProperties:
    @given(angle=st.floats(0.0, math.pi / 2))
    def test_loss_factor_bounds(self, angle):
        assert 0.0 < polarization_loss(angle) <= 1.0

    @given(angle=st.floats(0.0, math.pi / 2 - 0.01))
    def test_roundtrip_loss_monotone(self, angle):
        step = 0.01
        assert roundtrip_polarization_loss_db(
            angle + step
        ) >= roundtrip_polarization_loss_db(angle) - 1e-9
