"""Tests for tools/generate_api_docs.py and small helper functions."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.sweep import SweepPoint, metrics, sweep_1d, values

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSweepHelpers:
    def test_values_and_metrics_columns(self):
        points = sweep_1d([1.0, 2.0], lambda x: x + 10)
        assert values(points) == [1.0, 2.0]
        assert metrics(points) == [11.0, 12.0]

    def test_empty_sweep(self):
        assert sweep_1d([], lambda x: x) == []

    def test_metric_can_be_any_object(self):
        points = sweep_1d([1.0], lambda x: {"snr": x})
        assert metrics(points) == [{"snr": 1.0}]
        assert isinstance(points[0], SweepPoint)


class TestApiDocGenerator:
    def test_generator_runs_and_covers_key_modules(self, tmp_path):
        # run the real generator against a scratch output location by
        # importing it and overriding OUTPUT
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import generate_api_docs

            text = generate_api_docs.render()
        finally:
            sys.path.pop(0)
        for marker in (
            "repro.core.tag",
            "repro.core.ap",
            "repro.em.vanatta",
            "class `VanAttaArray`",
            "simulate_link",
            "repro.core.harvesting",
        ):
            assert marker in text, marker

    def test_generator_cli_writes_file(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "generate_api_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0
        assert "wrote" in result.stdout
        assert (REPO_ROOT / "docs" / "API.md").exists()

    def test_committed_doc_is_current(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import generate_api_docs

            expected = generate_api_docs.render()
        finally:
            sys.path.pop(0)
        committed = (REPO_ROOT / "docs" / "API.md").read_text()
        assert committed == expected, (
            "docs/API.md is stale; run python tools/generate_api_docs.py"
        )


class TestBenchRegressionGate:
    """Pure-logic tests for the CI bench-regression gate.

    The gate (``repro bench --check BENCH_hotpaths.json``) compares a
    fresh quick-mode run against the committed trajectory file and fails
    when any kernel's speedup collapses below ``REGRESSION_FLOOR`` times
    its recorded value.  These tests exercise the comparison logic with
    synthetic reports so no actual benchmarking is involved.
    """

    @staticmethod
    def _report(**speedups):
        from repro.sim.profiling import BenchReport, KernelBench

        return BenchReport(
            benchmarks=tuple(
                KernelBench(
                    name=name,
                    description=name,
                    reference_s=1.0,
                    vectorized_s=1.0 / ratio,
                    repeats=1,
                )
                for name, ratio in speedups.items()
            ),
            quick=True,
            generated="synthetic",
        )

    def test_passes_when_within_floor(self):
        from repro.sim.profiling import check_regression

        report = self._report(viterbi_decode=20.0, frame_chain_tx=40.0)
        baseline = {"viterbi_decode": 22.0, "frame_chain_tx": 45.0}
        assert check_regression(report, baseline) == []

    def test_fails_when_speedup_collapses(self):
        from repro.sim.profiling import check_regression

        # 1.1x measured vs 22x recorded: the classic "kernel rerouted
        # back through the reference loop" signature.
        report = self._report(viterbi_decode=1.1)
        failures = check_regression(report, {"viterbi_decode": 22.0})
        assert len(failures) == 1
        assert "viterbi_decode" in failures[0]

    def test_boundary_exactly_at_floor_passes(self):
        from repro.sim.profiling import REGRESSION_FLOOR, check_regression

        report = self._report(viterbi_decode=REGRESSION_FLOOR * 10.0)
        assert check_regression(report, {"viterbi_decode": 10.0}) == []

    def test_kernel_missing_from_run_is_a_failure(self):
        from repro.sim.profiling import check_regression

        report = self._report(viterbi_decode=20.0)
        failures = check_regression(
            report, {"viterbi_decode": 20.0, "frame_chain_tx": 40.0}
        )
        assert len(failures) == 1
        assert "frame_chain_tx" in failures[0]

    def test_new_kernel_not_in_baseline_is_ignored(self):
        from repro.sim.profiling import check_regression

        report = self._report(viterbi_decode=20.0, brand_new_kernel=1.0)
        assert check_regression(report, {"viterbi_decode": 20.0}) == []

    def test_floor_validation(self):
        from repro.sim.profiling import check_regression

        report = self._report(viterbi_decode=20.0)
        with pytest.raises(ValueError):
            check_regression(report, {"viterbi_decode": 20.0}, floor=0.0)
        with pytest.raises(ValueError):
            check_regression(report, {"viterbi_decode": 20.0}, floor=1.5)

    def test_load_trajectory_round_trip(self, tmp_path):
        from repro.sim.profiling import (
            check_regression,
            load_trajectory_speedups,
            write_trajectory,
        )

        report = self._report(viterbi_decode=21.5, frame_chain_tx=44.0)
        path = tmp_path / "bench.json"
        write_trajectory(report, path)
        speedups = load_trajectory_speedups(path)
        assert speedups == {"viterbi_decode": 21.5, "frame_chain_tx": 44.0}
        # a report can be checked against its own trajectory file
        assert check_regression(report, path) == []


class TestReceiverTimingRobustness:
    """Doppler and timing-offset tolerance of the burst receiver."""

    @pytest.mark.parametrize("velocity", [-3.0, 3.0])
    def test_running_speed_doppler_tolerated(self, velocity):
        from dataclasses import replace

        from repro.core.link import LinkConfig, simulate_link

        config = replace(LinkConfig(distance_m=3.0), radial_velocity_m_s=velocity)
        result = simulate_link(config, num_payload_bits=1024, rng=5)
        assert result.frame_success

    def test_fractional_sample_timing_survives(self, rng):
        """A burst arriving between sample instants still decodes."""
        import numpy as np

        from repro.core.ap import AccessPoint, APConfig
        from repro.core.tag import Tag, TagConfig

        tag = Tag(TagConfig(samples_per_symbol=8))
        frame = tag.make_frame(rng.integers(0, 2, 256).astype(np.int8))
        waveform, _ = tag.backscatter_waveform(frame)
        delayed = waveform.scale(1e-3).pad(256, 264).delay(
            0.4 / waveform.sample_rate
        )
        result = AccessPoint(APConfig(adc=None)).receive_burst(delayed, 8)
        assert result.success
