"""NetSimTask under the sweep executor: every composition stays byte-exact.

The fault-tolerant sweep stack (process pool, cache replay,
checkpoint/resume, injected faults, retries) was built for Monte-Carlo
BER points; these tests pin that a :class:`~repro.net.task.NetSimTask`
point — a full discrete-event network simulation — composes with all
of it without losing a single byte of determinism.
"""

import pickle

import pytest

from repro.net import NetSimConfig, NetSimTask
from repro.sim.executor import SweepExecutor
from repro.sim.faults import FaultPlan
from repro.sim.retry import RetryPolicy

_SEED = 17
_POPULATIONS = [8.0, 20.0, 50.0]


def _point_pickles(report) -> list[bytes]:
    """Per-point pickles.

    Pickled point by point (not as one list): a serially-computed sweep
    shares nested config objects *across* reports, which pickle's memo
    encodes as back-references, while pool/cache round-trips deep-copy
    them — semantically identical metrics, different list-level bytes.
    Per-report byte-identity is the meaningful determinism claim.
    """
    return [pickle.dumps(point) for point in report.points]


def _task(**overrides) -> NetSimTask:
    config = NetSimConfig(
        num_slots=150, min_distance_m=1.5, max_distance_m=3.0, **overrides
    )
    return NetSimTask(config=config)


class TestTaskBasics:
    def test_rejects_unknown_param(self):
        with pytest.raises(ValueError, match="not a NetSimConfig field"):
            NetSimTask(config=NetSimConfig(), param="nope")

    def test_int_params_cast_from_float_sweep_values(self):
        task = _task()
        assert task.config_for(25.0).num_tags == 25
        assert isinstance(task.config_for(25.0).num_tags, int)

    def test_float_params_stay_float(self):
        task = NetSimTask(config=NetSimConfig(), param="arrival_rate_hz")
        assert task.config_for(125.5).arrival_rate_hz == 125.5

    def test_task_is_picklable(self):
        task = _task(protocol="inventory")
        assert pickle.loads(pickle.dumps(task)) == task


class TestExecutorComposition:
    def test_serial_equals_process_backend(self):
        task = _task()
        serial = SweepExecutor("serial").run(_POPULATIONS, task, seed=_SEED)
        pooled = SweepExecutor("process", max_workers=2).run(
            _POPULATIONS, task, seed=_SEED
        )
        assert _point_pickles(serial) == _point_pickles(pooled)
        # digests too: the full event history matched, not just the summary
        for a, b in zip(serial.points, pooled.points):
            assert a.metric.trace_digest == b.metric.trace_digest

    def test_cache_replay_is_byte_identical(self, tmp_path):
        from repro.sim.cache import ResultCache

        task = _task()
        cold_cache = ResultCache(tmp_path / "cache")
        cold = SweepExecutor("serial", cache=cold_cache).run(
            _POPULATIONS, task, seed=_SEED
        )
        warm = SweepExecutor("serial", cache=cold_cache).run(
            _POPULATIONS, task, seed=_SEED
        )
        assert warm.cache_hits == len(_POPULATIONS)
        assert _point_pickles(cold) == _point_pickles(warm)

    def test_cache_misses_on_config_change(self, tmp_path):
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        SweepExecutor("serial", cache=cache).run(
            _POPULATIONS, _task(), seed=_SEED
        )
        report = SweepExecutor("serial", cache=cache).run(
            _POPULATIONS, _task(protocol="inventory"), seed=_SEED
        )
        assert report.cache_hits == 0

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        task = _task()
        straight = SweepExecutor("serial").run(_POPULATIONS, task, seed=_SEED)
        path = tmp_path / "sweep.ckpt"
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 1:
                raise KeyboardInterrupt  # simulated SIGINT mid-campaign

        with pytest.raises(KeyboardInterrupt):
            SweepExecutor("serial", on_progress=killer).run(
                _POPULATIONS, task, seed=_SEED, checkpoint=path
            )
        resumed = SweepExecutor("serial").run(
            _POPULATIONS, task, seed=_SEED, checkpoint=path, resume=True
        )
        assert resumed.resumed == 1
        assert _point_pickles(resumed) == _point_pickles(straight)

    def test_injected_faults_recover_bit_exactly(self):
        task = _task()
        executor = SweepExecutor(
            "serial", retry=RetryPolicy(max_retries=2, backoff_base_s=1e-4)
        )
        baseline = executor.run(_POPULATIONS, task, seed=_SEED)
        plan = FaultPlan.random(
            len(_POPULATIONS),
            seed=99,
            raise_rate=0.8,
            max_faulty_attempts=2,
        )
        chaotic = executor.run(_POPULATIONS, task, seed=_SEED, faults=plan)
        assert chaotic.failed == 0
        assert chaotic.retried >= 1  # the plan actually injected something
        assert _point_pickles(chaotic) == _point_pickles(baseline)

    def test_adaptive_schedule_rejected_clearly(self):
        executor = SweepExecutor("serial", schedule="adaptive")
        with pytest.raises(ValueError, match="make_accumulator"):
            executor.run(_POPULATIONS, _task(), seed=_SEED)
