"""Tests for repro.dsp.spectrum."""

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.dsp.spectrum import (
    find_spectral_peaks,
    occupied_bandwidth,
    power_spectral_density,
    spectrum,
    tone_power,
)


def _tone(freq, amp=1.0, fs=1e6, n=4096):
    t = np.arange(n) / fs
    return Signal(amp * np.exp(2j * np.pi * freq * t), fs)


class TestSpectrum:
    def test_tone_concentrates_power_in_one_bin(self):
        fs, n = 1e6, 4096
        freq = 10 * fs / n  # exactly on a bin
        freqs, power = spectrum(_tone(freq, fs=fs, n=n))
        peak = np.argmax(power)
        assert freqs[peak] == pytest.approx(freq)
        assert power[peak] == pytest.approx(1.0, rel=1e-6)

    def test_total_power_parseval(self):
        sig = _tone(25e3, amp=2.0)
        _, power = spectrum(sig)
        assert np.sum(power) == pytest.approx(sig.power(), rel=1e-9)

    def test_frequencies_ascending_and_centred(self):
        freqs, _ = spectrum(_tone(0.0))
        assert np.all(np.diff(freqs) > 0)
        assert freqs[0] < 0 < freqs[-1]

    def test_empty_signal_raises(self):
        with pytest.raises(ValueError):
            spectrum(Signal.zeros(0, 1e6))


class TestPsd:
    def test_integrated_psd_matches_power(self):
        sig = _tone(50e3, amp=1.5)
        freqs, psd = power_spectral_density(sig)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(sig.power(), rel=0.05)

    def test_white_noise_flat(self, rng):
        noise = rng.standard_normal(100_000) + 1j * rng.standard_normal(100_000)
        sig = Signal(noise, 1e6)
        _, psd = power_spectral_density(sig, nperseg=256)
        assert np.std(psd) / np.mean(psd) < 0.3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            power_spectral_density(Signal.zeros(0, 1e6))


class TestPeakFinding:
    def test_finds_two_tones_strongest_first(self):
        sig = _tone(100e3, amp=1.0) + _tone(-50e3, amp=0.5)
        peaks = find_spectral_peaks(sig, num_peaks=2, min_separation_hz=20e3)
        assert peaks[0][0] == pytest.approx(100e3, abs=500)
        assert peaks[1][0] == pytest.approx(-50e3, abs=500)
        assert peaks[0][1] > peaks[1][1]

    def test_dc_exclusion(self):
        sig = _tone(0.0, amp=10.0) + _tone(80e3, amp=0.1)
        peaks = find_spectral_peaks(sig, num_peaks=1, exclude_dc_hz=10e3)
        assert peaks[0][0] == pytest.approx(80e3, abs=500)

    def test_min_separation_suppresses_sidelobes(self):
        # An off-bin tone leaks into neighbours; min separation should
        # prevent returning two peaks from the same tone.
        fs, n = 1e6, 4096
        freq = 10.5 * fs / n
        peaks = find_spectral_peaks(
            _tone(freq, fs=fs, n=n), num_peaks=2, min_separation_hz=5e3
        )
        if len(peaks) == 2:
            assert abs(peaks[0][0] - peaks[1][0]) >= 5e3

    def test_rejects_zero_peaks(self):
        with pytest.raises(ValueError):
            find_spectral_peaks(_tone(1e3), num_peaks=0)


class TestOccupiedBandwidth:
    def test_tone_has_narrow_bandwidth(self):
        assert occupied_bandwidth(_tone(50e3)) < 5e3

    def test_wideband_signal_wider_than_tone(self, rng):
        noise = rng.standard_normal(50_000) + 1j * rng.standard_normal(50_000)
        wide = occupied_bandwidth(Signal(noise, 1e6))
        narrow = occupied_bandwidth(_tone(50e3))
        assert wide > 50 * narrow

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(_tone(1e3), fraction=1.5)


class TestTonePower:
    def test_reads_tone_power(self):
        sig = _tone(100e3, amp=2.0)
        assert tone_power(sig, 100e3, 10e3) == pytest.approx(4.0, rel=0.01)

    def test_ignores_out_of_window_tone(self):
        sig = _tone(100e3, amp=2.0)
        assert tone_power(sig, -100e3, 10e3) < 0.01

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            tone_power(_tone(1e3), 1e3, 0.0)
