"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link"])
        assert args.distance == 4.0
        assert args.modulation == "QPSK"

    def test_invalid_modulation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["link", "--modulation", "1024QAM"])


class TestLinkCommand:
    def test_successful_link_exit_zero(self, capsys):
        code = main(["link", "--distance", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frame OK     : True" in out
        assert "2.40 nJ" in out

    def test_dead_link_exit_one(self, capsys):
        code = main(["link", "--distance", "80", "--seed", "1"])
        assert code == 1
        assert "frame OK     : False" in capsys.readouterr().out

    def test_anechoic_environment_selectable(self, capsys):
        code = main(["link", "--environment", "anechoic", "--seed", "0"])
        assert code == 0


class TestSweepCommand:
    def test_snr_sweep_prints_table_and_plot(self, capsys):
        code = main(["sweep", "--metric", "snr", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snr vs distance" in out
        assert "distance [m]" in out

    def test_ber_sweep_runs(self, capsys):
        code = main([
            "sweep", "--metric", "ber", "--start", "2", "--stop", "16",
            "--points", "3", "--seed", "0",
        ])
        assert code == 0
        assert "ber" in capsys.readouterr().out

    def test_bad_range_exit_two(self, capsys):
        code = main(["sweep", "--start", "5", "--stop", "2"])
        assert code == 2


class TestEnergyCommand:
    def test_prints_all_schemes(self, capsys):
        code = main(["energy"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("OOK", "BPSK", "QPSK", "8PSK", "16QAM"):
            assert name in out
        assert "2.4" in out  # calibration point visible

    def test_duty_cycle_adds_battery_table(self, capsys):
        code = main(["energy", "--duty-cycle", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "battery life" in out
        assert "lifetime_days" in out


class TestNetworkCommand:
    def test_inventory_runs(self, capsys):
        code = main(["network", "--tags", "3", "--rounds", "10", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregate goodput" in out
        assert "fairness" in out

    def test_zero_tags_exit_two(self, capsys):
        assert main(["network", "--tags", "0"]) == 2

    def test_protocol_default_is_tdma(self):
        args = build_parser().parse_args(["network"])
        assert args.protocol == "tdma"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["network", "--protocol", "csma"])

    def test_aloha_discovery_table(self, capsys):
        code = main([
            "network", "--protocol", "aloha", "--tags", "4",
            "--rounds", "30", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0  # tiny population with a fat budget: all found
        assert "slotted-ALOHA discovery" in out
        assert "4/4" in out

    def test_fdma_routes_to_event_sim(self, capsys):
        code = main([
            "network", "--protocol", "fdma", "--tags", "6",
            "--rounds", "5", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol            : fdma" in out
        assert "tags read" in out


class TestNetsimCommand:
    def test_single_run_summary(self, capsys):
        code = main([
            "netsim", "--tags", "30", "--slots", "200", "--seed", "4",
            "--max-distance", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol            : aloha" in out
        assert "slot outcomes" in out
        assert "Jain fairness" in out

    def test_inventory_protocol_reports_q(self, capsys):
        code = main([
            "netsim", "--tags", "30", "--slots", "400",
            "--protocol", "inventory", "--seed", "4", "--max-distance", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Q rounds / final Q" in out

    def test_trace_dump(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main([
            "netsim", "--tags", "10", "--slots", "50", "--seed", "1",
            "--trace", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert path.exists()
        assert "event trace" in out

    def test_sweep_tags_prints_table(self, capsys):
        code = main([
            "netsim", "--slots", "150", "--seed", "3", "--max-distance", "3",
            "--sweep-tags", "10,25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "netsim population sweep" in out
        assert "num_tags" in out
        assert "2 computed" in out or "2 points" in out or "jain" in out

    def test_sweep_tags_bad_list_exit_two(self, capsys):
        assert main(["netsim", "--sweep-tags", "10,abc"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_negative_tags_exit_two(self, capsys):
        assert main(["netsim", "--tags", "-1"]) == 2

    def test_bad_config_exit_two(self, capsys):
        # validation errors surface as exit 2, not a traceback
        assert main(["netsim", "--transmit-probability", "1.5"]) == 2
        assert "transmit" in capsys.readouterr().err

    def test_bad_trace_capacity_exit_two(self, capsys):
        assert main(["netsim", "--trace-capacity", "0"]) == 2
        assert "trace_capacity" in capsys.readouterr().err

    def test_same_seed_same_output(self, capsys):
        argv = ["netsim", "--tags", "20", "--slots", "150", "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out


class TestNetsimMetroCommand:
    def test_grid_run_prints_deployment_summary(self, capsys):
        code = main([
            "netsim", "--grid", "2x2", "--tags", "40", "--slots", "200",
            "--seed", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "deployment          : 2x2 APs" in out
        assert "per-AP reads" in out
        assert "AP load Jain" in out

    def test_mobile_run_reports_handoffs(self, capsys):
        code = main([
            "netsim", "--grid", "1x2", "--tags", "30", "--slots", "300",
            "--mobile-fraction", "1.0", "--time-warp", "2000",
            "--epoch-slots", "50", "--persistent", "--seed", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "handoffs" in out
        assert "max Doppler" in out

    def test_trace_dump(self, tmp_path, capsys):
        path = tmp_path / "metro.jsonl"
        code = main([
            "netsim", "--grid", "2x2", "--tags", "10", "--slots", "50",
            "--seed", "1", "--trace", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert path.exists()
        assert "event trace" in out

    def test_metro_sweep_prints_table(self, capsys):
        code = main([
            "netsim", "--grid", "2x2", "--slots", "150", "--seed", "3",
            "--sweep-tags", "10,25",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "metro population sweep" in out
        assert "jain_ap_load" in out

    def test_bad_grid_exit_two(self, capsys):
        assert main(["netsim", "--grid", "bogus"]) == 2
        assert "RxC" in capsys.readouterr().err

    def test_bad_trace_capacity_exit_two(self, capsys):
        assert main(["netsim", "--grid", "2x2", "--trace-capacity", "0"]) == 2
        assert "trace_capacity" in capsys.readouterr().err

    def test_same_seed_same_output(self, capsys):
        argv = [
            "netsim", "--grid", "3x3", "--tags", "50", "--slots", "200",
            "--mobile-fraction", "0.5", "--seed", "9",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out

    def test_e21_listed_in_experiments(self, capsys):
        assert main(["experiments"]) == 0
        assert "E21" in capsys.readouterr().out


class TestBeamsearchCommand:
    def test_both_strategies_reported(self, capsys):
        code = main(["beamsearch", "--direction", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exhaustive" in out
        assert "hierarchical" in out


class TestSchemesCommand:
    def test_table_lists_thresholds(self, capsys):
        code = main(["schemes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snr_threshold_db" in out
        assert "16QAM" in out


class TestDeterminism:
    def test_same_seed_same_output(self, capsys):
        main(["link", "--seed", "9"])
        first = capsys.readouterr().out
        main(["link", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentsCommand:
    def test_lists_all_sixteen(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["experiments"])
        out = capsys.readouterr().out
        assert code == 0
        for exp_id in ("E1", "E8", "E12", "E16"):
            assert exp_id in out
        assert "EXPERIMENTS.md" in out


class TestCacheCommand:
    def test_stats_listing(self, tmp_path, capsys):
        code = main(["cache", "--dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries   : 0" in out
        assert "bytes" in out

    def test_prune_evicts_to_budget(self, tmp_path, capsys):
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "c", version="v")
        for i in range(3):
            cache.put(cache.key_for(i=i), list(range(100)))
        code = main(["cache", "--dir", str(tmp_path / "c"), "--prune", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 3 entries" in out
        assert len(cache) == 0

    def test_prune_and_clear_conflict(self, tmp_path, capsys):
        code = main(["cache", "--dir", str(tmp_path / "c"), "--clear", "--prune", "0"])
        assert code == 2

    def test_prune_negative_rejected(self, tmp_path):
        assert main(["cache", "--dir", str(tmp_path / "c"), "--prune", "-5"]) == 2


class TestSweepLinkBackend:
    def test_parser_accepts_vectorized(self):
        args = build_parser().parse_args(
            ["sweep", "--metric", "ber", "--link-backend", "vectorized"]
        )
        assert args.link_backend == "vectorized"

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--link-backend", "gpu"])

    def test_vectorized_ber_sweep_matches_serial(self, capsys):
        argv = ["sweep", "--metric", "ber", "--start", "2", "--stop", "14",
                "--points", "3", "--target-errors", "5", "--seed", "0"]
        def numbers_only(text):
            # drop the executor's wall-clock summary lines; everything
            # else (the BER table and plot) must match exactly
            return [line for line in text.splitlines()
                    if " s " not in line and "wall" not in line
                    and "slowest point" not in line]

        assert main(argv + ["--link-backend", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--link-backend", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        # identical numbers, not merely similar: the batched kernel is
        # bit-identical to the serial frame chain
        assert numbers_only(serial_out) == numbers_only(vectorized_out)


class TestBenchCommand:
    def test_prints_speedup_table(self, tmp_path, capsys, monkeypatch):
        from repro.sim import profiling

        stub = profiling.BenchReport(
            benchmarks=(
                profiling.KernelBench(
                    name="viterbi_decode", description="stub",
                    reference_s=1.0, vectorized_s=0.05, repeats=1,
                ),
            ),
            quick=True,
            generated="2000-01-01T00:00:00Z",
        )
        monkeypatch.setattr(profiling, "run_hotpath_benchmarks", lambda quick: stub)
        out_path = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--json", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "viterbi_decode" in out
        assert "20.0x" in out
        assert out_path.exists()


class TestSweepFaultToleranceFlags:
    _ARGV = ["sweep", "--metric", "ber", "--start", "2", "--stop", "10",
             "--points", "3", "--target-errors", "5", "--seed", "0"]

    def test_parser_accepts_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--timeout", "5", "--max-retries", "2",
             "--checkpoint", "run.jsonl", "--resume"]
        )
        assert args.timeout == 5.0
        assert args.max_retries == 2
        assert args.checkpoint == "run.jsonl"
        assert args.resume is True

    def test_fault_tolerance_flags_default_off(self):
        args = build_parser().parse_args(["sweep"])
        assert args.timeout is None
        assert args.max_retries == 0
        assert args.checkpoint is None
        assert args.resume is False

    def test_resume_requires_checkpoint(self, capsys):
        assert main(self._ARGV + ["--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize("timeout", ["0", "-3"])
    def test_nonpositive_timeout_exit_two(self, timeout, capsys):
        assert main(self._ARGV + ["--timeout", timeout]) == 2
        assert "--timeout" in capsys.readouterr().err

    def test_negative_max_retries_exit_two(self, capsys):
        assert main(self._ARGV + ["--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_checkpoint_then_resume_is_bit_exact(self, tmp_path, capsys):
        ckpt = tmp_path / "sweep.jsonl"
        argv = self._ARGV + ["--checkpoint", str(ckpt)]

        assert main(argv) == 0
        first = capsys.readouterr().out
        assert ckpt.exists()

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "3 resumed" in second

        def table_lines(text):
            return [l for l in text.splitlines() if l.startswith("  ") or "ber" in l]

        # the resumed run reproduces the same numbers without recomputing
        first_rows = [l for l in first.splitlines() if l and l[0].isdigit()]
        second_rows = [l for l in second.splitlines() if l and l[0].isdigit()]
        assert first_rows == second_rows


class TestCacheVerifyCommand:
    def test_verify_clean_cache_exit_zero(self, tmp_path, capsys):
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "c", version="v")
        cache.put(cache.key_for(i=1), [1, 2, 3])
        code = main(["cache", "--dir", str(tmp_path / "c"), "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified 1 entries: 0 corrupt, 0 quarantined" in out

    def test_verify_quarantines_corrupt_entry_exit_one(self, tmp_path, capsys):
        from repro.sim.cache import ResultCache
        from repro.sim.faults import corrupt_file

        cache = ResultCache(tmp_path / "c", version="v")
        key = cache.key_for(i=1)
        cache.put(key, [1, 2, 3])
        corrupt_file(cache.entry_path(key))
        code = main(["cache", "--dir", str(tmp_path / "c"), "--verify"])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 corrupt, 1 quarantined" in out
        assert "quarantine" in out
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_verify_conflicts_with_clear(self, tmp_path, capsys):
        code = main(["cache", "--dir", str(tmp_path / "c"), "--verify", "--clear"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
