"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link"])
        assert args.distance == 4.0
        assert args.modulation == "QPSK"

    def test_invalid_modulation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["link", "--modulation", "1024QAM"])


class TestLinkCommand:
    def test_successful_link_exit_zero(self, capsys):
        code = main(["link", "--distance", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frame OK     : True" in out
        assert "2.40 nJ" in out

    def test_dead_link_exit_one(self, capsys):
        code = main(["link", "--distance", "80", "--seed", "1"])
        assert code == 1
        assert "frame OK     : False" in capsys.readouterr().out

    def test_anechoic_environment_selectable(self, capsys):
        code = main(["link", "--environment", "anechoic", "--seed", "0"])
        assert code == 0


class TestSweepCommand:
    def test_snr_sweep_prints_table_and_plot(self, capsys):
        code = main(["sweep", "--metric", "snr", "--points", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snr vs distance" in out
        assert "distance [m]" in out

    def test_ber_sweep_runs(self, capsys):
        code = main([
            "sweep", "--metric", "ber", "--start", "2", "--stop", "16",
            "--points", "3", "--seed", "0",
        ])
        assert code == 0
        assert "ber" in capsys.readouterr().out

    def test_bad_range_exit_two(self, capsys):
        code = main(["sweep", "--start", "5", "--stop", "2"])
        assert code == 2


class TestEnergyCommand:
    def test_prints_all_schemes(self, capsys):
        code = main(["energy"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("OOK", "BPSK", "QPSK", "8PSK", "16QAM"):
            assert name in out
        assert "2.4" in out  # calibration point visible

    def test_duty_cycle_adds_battery_table(self, capsys):
        code = main(["energy", "--duty-cycle", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "battery life" in out
        assert "lifetime_days" in out


class TestNetworkCommand:
    def test_inventory_runs(self, capsys):
        code = main(["network", "--tags", "3", "--rounds", "10", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregate goodput" in out
        assert "fairness" in out

    def test_zero_tags_exit_two(self, capsys):
        assert main(["network", "--tags", "0"]) == 2


class TestBeamsearchCommand:
    def test_both_strategies_reported(self, capsys):
        code = main(["beamsearch", "--direction", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exhaustive" in out
        assert "hierarchical" in out


class TestSchemesCommand:
    def test_table_lists_thresholds(self, capsys):
        code = main(["schemes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snr_threshold_db" in out
        assert "16QAM" in out


class TestDeterminism:
    def test_same_seed_same_output(self, capsys):
        main(["link", "--seed", "9"])
        first = capsys.readouterr().out
        main(["link", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestExperimentsCommand:
    def test_lists_all_sixteen(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["experiments"])
        out = capsys.readouterr().out
        assert code == 0
        for exp_id in ("E1", "E8", "E12", "E16"):
            assert exp_id in out
        assert "EXPERIMENTS.md" in out
