"""Tests for repro.rf.impairments."""

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.rf.impairments import Saturation, apply_iq_imbalance, phase_quantization_error


class TestSaturation:
    def test_linear_for_small_signals(self):
        sat = Saturation(saturation_amplitude=1.0)
        sig = Signal(np.full(10, 0.01 + 0j), 1e6)
        out = sat.apply(sig)
        assert np.allclose(out.samples, sig.samples, rtol=1e-4)

    def test_limits_large_signals(self):
        sat = Saturation(saturation_amplitude=1.0)
        sig = Signal(np.full(10, 100.0 + 0j), 1e6)
        out = sat.apply(sig)
        assert np.all(np.abs(out.samples) <= 1.0 + 1e-9)

    def test_phase_preserved(self):
        sat = Saturation(saturation_amplitude=1.0)
        sig = Signal(np.array([5.0 * np.exp(1j * 0.9)]), 1e6)
        out = sat.apply(sig)
        assert np.angle(out.samples[0]) == pytest.approx(0.9)

    def test_from_p1db_gain_drop_is_1db(self):
        sat = Saturation.from_p1db_dbm(0.0)  # 1 mW -> amplitude 0.0316 V
        amp_at_p1db = np.sqrt(1e-3)
        sig = Signal(np.array([amp_at_p1db + 0j]), 1e6)
        out = sat.apply(sig)
        drop_db = 20 * np.log10(abs(out.samples[0]) / amp_at_p1db)
        assert drop_db == pytest.approx(-1.0, abs=0.15)

    @pytest.mark.parametrize("amp", [0.0, -1.0])
    def test_rejects_bad_amplitude(self, amp):
        with pytest.raises(ValueError):
            Saturation(saturation_amplitude=amp)


class TestIqImbalance:
    def test_no_imbalance_is_identity(self):
        sig = Signal.tone(10e3, 1e6, 1e-3)
        out = apply_iq_imbalance(sig, 0.0, 0.0)
        assert np.allclose(out.samples, sig.samples)

    def test_imbalance_creates_image_tone(self):
        sig = Signal.tone(100e3, 1e6, 4e-3)
        out = apply_iq_imbalance(sig, gain_mismatch_db=1.0, phase_mismatch_deg=5.0)
        from repro.dsp.spectrum import tone_power

        direct = tone_power(out, 100e3, 5e3)
        image = tone_power(out, -100e3, 5e3)
        assert image > 1e-5
        assert direct > 50 * image  # image well below the wanted tone

    def test_image_rejection_improves_with_smaller_error(self):
        sig = Signal.tone(100e3, 1e6, 4e-3)
        from repro.dsp.spectrum import tone_power

        big = apply_iq_imbalance(sig, 1.0, 5.0)
        small = apply_iq_imbalance(sig, 0.1, 0.5)
        assert tone_power(small, -100e3, 5e3) < tone_power(big, -100e3, 5e3)


class TestPhaseQuantizationError:
    def test_zero_rms_is_exact(self, rng):
        nominal = np.array([0.0, np.pi / 2, np.pi])
        out = phase_quantization_error(nominal, 0.0, rng)
        assert np.array_equal(out, nominal)

    def test_error_statistics(self):
        nominal = np.zeros(20_000)
        out = phase_quantization_error(nominal, 0.1, np.random.default_rng(5))
        assert np.std(out) == pytest.approx(0.1, rel=0.05)
        assert np.mean(out) == pytest.approx(0.0, abs=0.005)

    def test_rejects_negative_rms(self, rng):
        with pytest.raises(ValueError):
            phase_quantization_error(np.zeros(3), -0.1, rng)
