"""Tests for repro.core.adaptation."""

import pytest

from repro.core.adaptation import (
    DEFAULT_MCS_TABLE,
    McsEntry,
    RateAdapter,
    snr_threshold_db,
)
from repro.core.modulation import BPSK, OOK, PSK8, QAM16, QPSK


class TestThresholds:
    def test_threshold_achieves_target_ber(self):
        for scheme in (OOK, BPSK, QPSK, PSK8, QAM16):
            threshold = snr_threshold_db(scheme, target_ber=1e-3)
            assert scheme.theoretical_ber(threshold) == pytest.approx(1e-3, rel=0.05)

    def test_denser_schemes_need_more_snr(self):
        t_bpsk = snr_threshold_db(BPSK)
        t_qpsk = snr_threshold_db(QPSK)
        t_8psk = snr_threshold_db(PSK8)
        t_16qam = snr_threshold_db(QAM16)
        assert t_bpsk < t_qpsk < t_8psk < t_16qam

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            snr_threshold_db(BPSK, target_ber=0.6)


class TestDefaultTable:
    def test_contains_all_schemes(self):
        names = {entry.modulation for entry in DEFAULT_MCS_TABLE}
        assert names == {"OOK", "BPSK", "QPSK", "8PSK", "16QAM"}

    def test_sorted_by_spectral_efficiency(self):
        ks = [entry.bits_per_symbol for entry in DEFAULT_MCS_TABLE]
        assert ks == sorted(ks)


class TestSelect:
    def test_outage_below_all_thresholds(self):
        assert RateAdapter().select(-10.0) is None

    def test_high_snr_selects_densest(self):
        entry = RateAdapter().select(40.0)
        assert entry.modulation == "16QAM"

    def test_intermediate_snr_selects_intermediate(self):
        adapter = RateAdapter()
        qpsk_entry = next(e for e in adapter.table if e.modulation == "QPSK")
        psk8_entry = next(e for e in adapter.table if e.modulation == "8PSK")
        snr = (qpsk_entry.min_snr_db + psk8_entry.min_snr_db) / 2.0
        assert adapter.select(snr).modulation == "QPSK"

    def test_monotone_rate_in_snr(self):
        adapter = RateAdapter()
        last_k = 0
        for snr in range(-5, 40):
            entry = adapter.select(float(snr))
            k = entry.bits_per_symbol if entry else 0
            assert k >= last_k
            last_k = k

    def test_bpsk_preferred_over_ook_at_equal_k(self):
        # Same bits/symbol; BPSK needs less SNR so it should win.
        adapter = RateAdapter()
        bpsk_threshold = next(
            e.min_snr_db for e in adapter.table if e.modulation == "BPSK"
        )
        entry = adapter.select(bpsk_threshold + 0.1)
        assert entry.modulation == "BPSK"


class TestHysteresis:
    def test_no_flap_just_above_boundary(self):
        adapter = RateAdapter(hysteresis_db=2.0)
        qpsk = next(e for e in adapter.table if e.modulation == "QPSK")
        psk8 = next(e for e in adapter.table if e.modulation == "8PSK")
        # currently QPSK; SNR creeps just past the 8PSK threshold
        entry = adapter.select(psk8.min_snr_db + 0.5, current="QPSK")
        assert entry.modulation == "QPSK"
        # well past the threshold plus hysteresis: upgrade
        entry = adapter.select(psk8.min_snr_db + 2.5, current="QPSK")
        assert entry.modulation == "8PSK"
        del qpsk

    def test_downgrade_when_current_unsustainable(self):
        adapter = RateAdapter()
        qpsk = next(e for e in adapter.table if e.modulation == "QPSK")
        entry = adapter.select(qpsk.min_snr_db - 3.0, current="16QAM")
        assert entry is not None
        assert entry.bits_per_symbol < 4

    def test_unknown_current_raises(self):
        with pytest.raises(KeyError):
            RateAdapter().select(20.0, current="WEIRD")


class TestGoodput:
    def test_zero_in_outage(self):
        assert RateAdapter().goodput_bps(-10.0, 10e6) == 0.0

    def test_increases_with_snr(self):
        adapter = RateAdapter()
        values = [adapter.goodput_bps(snr, 10e6) for snr in (8.0, 15.0, 25.0, 35.0)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_high_snr_reaches_peak_rate(self):
        goodput = RateAdapter().goodput_bps(40.0, 10e6)
        assert goodput == pytest.approx(40e6, rel=0.01)  # 16QAM: 4 bits/sym

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            RateAdapter().goodput_bps(10.0, 0.0)
        with pytest.raises(ValueError):
            RateAdapter().goodput_bps(10.0, 1e6, frame_bits=0)


class TestConstruction:
    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(table=())

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(hysteresis_db=-1.0)

    def test_mcs_entry_bits(self):
        assert McsEntry("QPSK", 10.0).bits_per_symbol == 2
