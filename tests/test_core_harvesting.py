"""Tests for repro.core.harvesting."""

import pytest

from repro.core.energy import TagEnergyModel
from repro.core.harvesting import HarvestingBudget, Rectifier


class TestRectifier:
    def test_below_sensitivity_harvests_nothing(self):
        rectifier = Rectifier(sensitivity_dbm=-20.0)
        assert rectifier.efficiency(-25.0) == 0.0
        assert rectifier.harvested_power_w(-25.0) == 0.0

    def test_ramps_to_peak(self):
        rectifier = Rectifier(sensitivity_dbm=-20.0, peak_efficiency=0.3, ramp_db=10.0)
        assert rectifier.efficiency(-15.0) == pytest.approx(0.15)
        assert rectifier.efficiency(-10.0) == pytest.approx(0.3)
        assert rectifier.efficiency(10.0) == pytest.approx(0.3)

    def test_harvested_power_scales_with_input(self):
        rectifier = Rectifier()
        assert rectifier.harvested_power_w(0.0) > rectifier.harvested_power_w(-10.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Rectifier(peak_efficiency=0.0)
        with pytest.raises(ValueError):
            Rectifier(ramp_db=0.0)


class TestHarvestingBudget:
    def test_incident_power_follows_friis(self):
        budget = HarvestingBudget()
        near = budget.incident_power_dbm(1.0)
        far = budget.incident_power_dbm(10.0)
        assert near - far == pytest.approx(20.0, abs=1e-9)

    def test_harvest_decreases_with_distance(self):
        budget = HarvestingBudget()
        assert budget.harvested_power_w(0.5) > budget.harvested_power_w(1.0)

    def test_max_duty_zero_beyond_knee(self):
        budget = HarvestingBudget()
        assert budget.max_duty_cycle(5.0) == 0.0

    def test_max_duty_positive_point_blank(self):
        budget = HarvestingBudget()
        assert budget.max_duty_cycle(0.5) > 0.0

    def test_max_duty_capped_at_one(self):
        # an absurdly efficient harvester at point-blank range
        budget = HarvestingBudget(
            rectifier=Rectifier(sensitivity_dbm=-60.0, peak_efficiency=1.0),
            tx_power_dbm=40.0,
        )
        assert budget.max_duty_cycle(0.1) == 1.0

    def test_battery_free_range_monotone_in_duty(self):
        budget = HarvestingBudget()
        low_duty = budget.battery_free_range_m(1e-5)
        high_duty = budget.battery_free_range_m(1e-3)
        assert low_duty >= high_duty

    def test_battery_free_range_boundary_consistent(self):
        budget = HarvestingBudget()
        duty = 1e-4
        range_m = budget.battery_free_range_m(duty)
        assert range_m > 0
        assert budget.max_duty_cycle(range_m * 0.95) >= duty
        assert budget.max_duty_cycle(range_m * 1.1) < duty

    def test_unreachable_duty_gives_zero_range(self):
        budget = HarvestingBudget()
        assert budget.battery_free_range_m(1.0) == 0.0

    def test_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            HarvestingBudget().battery_free_range_m(0.0)

    def test_sustainable_rate_scales_with_modulation(self):
        budget = HarvestingBudget()
        qpsk = budget.sustainable_bit_rate_hz(0.8, "QPSK")
        qam = budget.sustainable_bit_rate_hz(0.8, "16QAM")
        assert qam > qpsk  # more bits per active symbol

    def test_honest_finding_battery_free_is_short_range(self):
        # the result this module exists to surface: at mW-class node
        # power, mmWave harvest sustains kbps-class duty only within
        # a couple of metres - beyond that a battery/supercap is needed
        budget = HarvestingBudget()
        assert budget.battery_free_range_m(5e-5) < 2.5

    def test_sleep_power_gates_the_range(self):
        frugal = HarvestingBudget(
            energy_model=TagEnergyModel(standby_power_w=1e-7)
        )
        hungry = HarvestingBudget(
            energy_model=TagEnergyModel(standby_power_w=1e-4)
        )
        duty = 1e-6
        assert frugal.battery_free_range_m(duty) > hungry.battery_free_range_m(duty)
