"""Tests for repro.em.propagation."""


import pytest

from repro.constants import DEFAULT_CARRIER_HZ
from repro.em.propagation import (
    LinkBudget,
    backscatter_link_budget,
    backscatter_received_power_dbm,
    free_space_path_loss_db,
    friis_received_power_dbm,
    two_ray_gain,
)


class TestFspl:
    def test_known_value_at_1m_24ghz(self):
        # FSPL(1 m, 24.125 GHz) = 20*log10(4*pi/lambda) ~ 60.1 dB
        assert free_space_path_loss_db(1.0, DEFAULT_CARRIER_HZ) == pytest.approx(
            60.1, abs=0.2
        )

    def test_20db_per_decade(self):
        one = free_space_path_loss_db(1.0, DEFAULT_CARRIER_HZ)
        ten = free_space_path_loss_db(10.0, DEFAULT_CARRIER_HZ)
        assert ten - one == pytest.approx(20.0, abs=1e-9)

    def test_higher_frequency_higher_loss(self):
        assert free_space_path_loss_db(5.0, 60e9) > free_space_path_loss_db(5.0, 24e9)

    def test_rejects_non_positive_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 24e9)


class TestFriis:
    def test_composition(self):
        power = friis_received_power_dbm(20.0, 10.0, 10.0, 2.0, DEFAULT_CARRIER_HZ)
        expected = 40.0 - free_space_path_loss_db(2.0, DEFAULT_CARRIER_HZ)
        assert power == pytest.approx(expected)


class TestBackscatterBudget:
    def test_d4_slope(self):
        kwargs = dict(
            tx_power_dbm=20.0,
            ap_tx_gain_dbi=20.0,
            ap_rx_gain_dbi=20.0,
            tag_roundtrip_gain_db=26.0,
            carrier_hz=DEFAULT_CARRIER_HZ,
        )
        p1 = backscatter_received_power_dbm(distance_m=1.0, **kwargs)
        p10 = backscatter_received_power_dbm(distance_m=10.0, **kwargs)
        assert p1 - p10 == pytest.approx(40.0, abs=1e-9)

    def test_modulation_loss_subtracts(self):
        base = backscatter_received_power_dbm(20, 20, 20, 26, 4.0, DEFAULT_CARRIER_HZ)
        with_loss = backscatter_received_power_dbm(
            20, 20, 20, 26, 4.0, DEFAULT_CARRIER_HZ, modulation_loss_db=3.0
        )
        assert base - with_loss == pytest.approx(3.0)

    def test_backscatter_weaker_than_one_way(self):
        one_way = friis_received_power_dbm(20, 20, 20, 4.0, DEFAULT_CARRIER_HZ)
        roundtrip = backscatter_received_power_dbm(
            20, 20, 20, 26.0, 4.0, DEFAULT_CARRIER_HZ
        )
        assert roundtrip < one_way


class TestLinkBudgetObject:
    def test_snr_is_rx_minus_noise(self):
        budget = LinkBudget(4.0, received_power_dbm=-60.0, noise_power_dbm=-98.0)
        assert budget.snr_db == pytest.approx(38.0)
        assert budget.snr_linear() == pytest.approx(10**3.8)

    def test_budget_function_noise_floor(self):
        budget = backscatter_link_budget(
            distance_m=4.0,
            tag_roundtrip_gain_db=26.0,
            bandwidth_hz=10e6,
            noise_figure_db=6.0,
        )
        # -174 + 70 + 6 = -98 dBm
        assert budget.noise_power_dbm == pytest.approx(-98.0, abs=0.1)

    def test_budget_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            backscatter_link_budget(4.0, 26.0, bandwidth_hz=0.0)

    def test_wider_bandwidth_lower_snr(self):
        narrow = backscatter_link_budget(4.0, 26.0, bandwidth_hz=1e6)
        wide = backscatter_link_budget(4.0, 26.0, bandwidth_hz=100e6)
        assert narrow.snr_db - wide.snr_db == pytest.approx(20.0, abs=1e-6)


class TestTwoRay:
    def test_gain_bounded_zero_to_four(self):
        for d in (1.0, 3.0, 10.0, 30.0):
            g = two_ray_gain(d, 1.5, 1.0, DEFAULT_CARRIER_HZ)
            assert 0.0 <= g <= 4.0 + 1e-9

    def test_far_field_approaches_deep_fades_and_peaks(self):
        gains = [
            two_ray_gain(d, 1.5, 1.0, DEFAULT_CARRIER_HZ)
            for d in [2 + 0.001 * k for k in range(2000)]
        ]
        assert max(gains) > 2.0
        assert min(gains) < 0.3

    def test_attenuated_reflection_reduces_ripple(self):
        strong = [
            two_ray_gain(d, 1.5, 1.0, DEFAULT_CARRIER_HZ, reflection_coefficient=-1.0)
            for d in [3 + 0.01 * k for k in range(100)]
        ]
        weak = [
            two_ray_gain(d, 1.5, 1.0, DEFAULT_CARRIER_HZ, reflection_coefficient=-0.1)
            for d in [3 + 0.01 * k for k in range(100)]
        ]
        assert (max(strong) - min(strong)) > (max(weak) - min(weak))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            two_ray_gain(0.0, 1.0, 1.0, 24e9)
        with pytest.raises(ValueError):
            two_ray_gain(5.0, -1.0, 1.0, 24e9)
