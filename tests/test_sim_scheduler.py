"""Adaptive frame scheduler: bit-exactness, reallocation, fault tolerance.

The contract under test (see :mod:`repro.sim.scheduler`):

* every point of an adaptive run is **byte-identical** to the same
  point of a uniform run (and hence to a standalone
  ``estimate_link_ber`` call with the same seed/chunking/backend) —
  pickle-level comparisons, across serial and process backends;
* adaptive and uniform runs share :class:`ResultCache` entries (the
  cache key normalises backend, chunking and schedule away) and
  checkpoint lines (resume is schedule-agnostic);
* chunk-level retries, timeouts and pool-death degradation recover
  without changing a single number, mirroring the uniform engine;
* the report surfaces convergence: which points hit ``target_errors``
  versus ran out of bit budget, and how many rounds the tail took.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.channel.blockage import BlockageEvent
from repro.core.link import LinkConfig
from repro.sim.cache import ResultCache
from repro.sim.executor import (
    BerSweepTask,
    FunctionTask,
    SweepExecutor,
    run_sweep,
)
from repro.sim.faults import FaultPlan, FaultSpec
from repro.sim.monte_carlo import LinkBerAccumulator, estimate_link_ber
from repro.sim.retry import RetryPolicy
from repro.sim.scheduler import AdaptiveOutcome, advance_chunk, run_adaptive


def _task(**overrides) -> BerSweepTask:
    kwargs = dict(
        config=LinkConfig(
            rician_k_db=6.0,
            blockage_events=(BlockageEvent(0.2e-4, 0.6e-4, 10.0),),
        ),
        param="distance_m",
        target_errors=15,
        max_bits=16_000,
        bits_per_frame=512,
        chunk_frames=3,
        link_backend="vectorized",
    )
    kwargs.update(overrides)
    return BerSweepTask(**kwargs)


_VALUES = [3.0, 3.6, 4.0, 4.4]


def _fast_retry(budget: int) -> RetryPolicy:
    return RetryPolicy(max_retries=budget, backoff_base_s=0.001)


# -- the accumulator contract -------------------------------------------------


class TestLinkBerAccumulator:
    def test_drives_to_same_estimate_as_estimate_link_ber(self):
        config = _task().config_for(4.0)
        kwargs = dict(
            target_errors=15,
            max_bits=16_000,
            bits_per_frame=512,
            chunk_frames=3,
            backend="vectorized",
            seed=9,
        )
        accumulator = LinkBerAccumulator(config, **kwargs)
        while not accumulator.done:
            accumulator.advance()
        assert accumulator.estimate() == estimate_link_ber(config, **kwargs)

    def test_pickle_mid_run_is_bit_exact(self):
        config = _task().config_for(4.0)
        accumulator = LinkBerAccumulator(
            config,
            target_errors=15,
            max_bits=16_000,
            bits_per_frame=512,
            chunk_frames=3,
            backend="vectorized",
            seed=9,
        )
        accumulator.advance()
        clone = pickle.loads(pickle.dumps(accumulator))
        while not accumulator.done:
            accumulator.advance()
        while not clone.done:
            clone.advance()
        assert accumulator.estimate() == clone.estimate()

    def test_advance_past_done_is_noop(self):
        config = _task().config_for(2.0)
        accumulator = LinkBerAccumulator(
            config, target_errors=1, max_bits=512, bits_per_frame=512
        )
        while not accumulator.done:
            accumulator.advance()
        before = accumulator.estimate()
        accumulator.advance()
        assert accumulator.estimate() == before

    def test_validation_matches_estimator(self):
        config = LinkConfig()
        with pytest.raises(ValueError, match="target_errors"):
            LinkBerAccumulator(config, target_errors=0)
        with pytest.raises(ValueError, match="max_bits"):
            LinkBerAccumulator(config, max_bits=10, bits_per_frame=2048)
        with pytest.raises(ValueError, match="chunk_frames"):
            LinkBerAccumulator(config, chunk_frames=0)
        with pytest.raises(ValueError, match="backend"):
            LinkBerAccumulator(config, backend="gpu")

    def test_advance_chunk_helper_returns_elapsed(self):
        accumulator = LinkBerAccumulator(
            _task().config_for(4.0), target_errors=1, bits_per_frame=512
        )
        result, seconds = advance_chunk(accumulator)
        assert result is accumulator
        assert seconds >= 0.0


# -- adaptive == uniform, bit for bit -----------------------------------------


class TestAdaptiveBitExactness:
    def test_serial_adaptive_matches_uniform(self):
        task = _task()
        uniform = SweepExecutor("serial").run(_VALUES, task, seed=5)
        adaptive = SweepExecutor("serial", schedule="adaptive").run(
            _VALUES, task, seed=5
        )
        assert pickle.dumps(adaptive.points) == pickle.dumps(uniform.points)
        assert adaptive.schedule == "adaptive"
        assert adaptive.rounds >= 1

    def test_process_adaptive_matches_uniform(self):
        task = _task()
        uniform = SweepExecutor("serial").run(_VALUES, task, seed=5)
        adaptive = SweepExecutor(
            "process", max_workers=2, schedule="adaptive"
        ).run(_VALUES, task, seed=5)
        assert pickle.dumps(adaptive.points) == pickle.dumps(uniform.points)

    def test_matches_standalone_estimator_per_point(self):
        task = _task()
        report = SweepExecutor("serial", schedule="adaptive").run(
            _VALUES, task, seed=5
        )
        children = np.random.SeedSequence(5).spawn(len(_VALUES))
        for i, value in enumerate(_VALUES):
            standalone = estimate_link_ber(
                task.config_for(value),
                target_errors=task.target_errors,
                max_bits=task.max_bits,
                bits_per_frame=task.bits_per_frame,
                chunk_frames=task.chunk_frames,
                backend=task.link_backend,
                seed=children[i],
            )
            assert report.points[i].metric == standalone, f"point {i}"

    def test_serial_link_backend_also_bit_exact(self):
        task = _task(link_backend="serial", target_errors=8, max_bits=8_000)
        uniform = SweepExecutor("serial").run(_VALUES[:3], task, seed=2)
        adaptive = SweepExecutor("serial", schedule="adaptive").run(
            _VALUES[:3], task, seed=2
        )
        assert pickle.dumps(adaptive.points) == pickle.dumps(uniform.points)

    def test_run_sweep_accepts_schedule(self):
        task = _task(target_errors=5, max_bits=4_096)
        report = run_sweep(_VALUES[:2], task, schedule="adaptive", seed=1)
        assert report.schedule == "adaptive"
        assert report.failed == 0


# -- composition: cache, checkpoint, env --------------------------------------


class TestAdaptiveComposition:
    def test_cross_mode_cache_hits(self, tmp_path):
        """Uniform/serial/chunk=1 warms the cache; adaptive/vectorized/
        chunk=3 hits every entry — the key normalises all three knobs."""
        cache = ResultCache(tmp_path / "cache")
        warm_task = _task(link_backend="serial", chunk_frames=1)
        hit_task = _task(link_backend="vectorized", chunk_frames=3)
        warm = SweepExecutor("serial", cache=cache).run(_VALUES, warm_task, seed=5)
        hit = SweepExecutor("serial", cache=cache, schedule="adaptive").run(
            _VALUES, hit_task, seed=5
        )
        assert warm.cache_misses == len(_VALUES) and warm.cache_hits == 0
        assert hit.cache_hits == len(_VALUES) and hit.cache_misses == 0
        assert pickle.dumps(hit.points) == pickle.dumps(warm.points)

    def test_adaptive_warms_cache_for_uniform(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = _task()
        SweepExecutor("serial", cache=cache, schedule="adaptive").run(
            _VALUES[:2], task, seed=5
        )
        uniform = SweepExecutor("serial", cache=cache).run(
            _VALUES[:2], task, seed=5
        )
        assert uniform.cache_hits == 2

    def test_checkpoint_resume_is_schedule_agnostic(self, tmp_path):
        """A checkpoint written by an adaptive run resumes a uniform run
        (and vice versa) bit-exactly."""
        task = _task()
        ck = tmp_path / "sweep.jsonl"
        first = SweepExecutor("serial", schedule="adaptive").run(
            _VALUES, task, seed=5, checkpoint=ck
        )
        resumed = SweepExecutor("serial").run(
            _VALUES, task, seed=5, checkpoint=ck, resume=True
        )
        assert resumed.resumed == len(_VALUES)
        assert pickle.dumps(resumed.points) == pickle.dumps(first.points)

    def test_from_env_parses_schedule(self):
        executor = SweepExecutor.from_env(
            environ={"REPRO_SWEEP_SCHEDULE": "adaptive"}
        )
        assert executor.schedule == "adaptive"
        assert SweepExecutor.from_env(environ={}).schedule == "uniform"

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            SweepExecutor("serial", schedule="greedy")

    def test_function_task_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="make_accumulator"):
            SweepExecutor("serial", schedule="adaptive").run(
                [1.0], FunctionTask(lambda v: v)
            )


# -- fault tolerance at chunk granularity -------------------------------------


class TestAdaptiveFaultTolerance:
    def test_chunk_retry_recovers_bit_identical(self):
        task = _task()
        clean = SweepExecutor("serial").run(_VALUES, task, seed=5)
        plan = FaultPlan(specs=(FaultSpec("raise", 1, attempts=2),))
        chaotic = SweepExecutor(
            "serial", schedule="adaptive", retry=_fast_retry(3)
        ).run(_VALUES, task, seed=5, faults=plan)
        assert pickle.dumps(chaotic.points) == pickle.dumps(clean.points)
        assert chaotic.retried == 2
        assert chaotic.recovered == 1
        assert chaotic.failed == 0

    def test_exhausted_chunk_budget_isolates_point(self):
        plan = FaultPlan(specs=(FaultSpec("raise", 0, attempts=99),))
        report = SweepExecutor(
            "serial", schedule="adaptive", retry=_fast_retry(1)
        ).run(_VALUES, task := _task(), seed=5, faults=plan)
        assert report.failed == 1
        assert report.points[0].metric is None
        assert all(p.metric is not None for p in report.points[1:])
        assert "InjectedFault" in report.failure_summary()

    def test_timeout_trips_chunk_and_retry_replays_it(self):
        task = _task(target_errors=5, max_bits=4_096)
        clean = SweepExecutor("serial").run(_VALUES[:2], task, seed=5)
        plan = FaultPlan(specs=(FaultSpec("hang", 1, attempts=1, delay_s=30.0),))
        report = SweepExecutor(
            "serial",
            schedule="adaptive",
            timeout_s=0.5,
            retry=_fast_retry(1),
        ).run(_VALUES[:2], task, seed=5, faults=plan)
        assert report.failed == 0
        assert report.retried == 1
        assert pickle.dumps(report.points) == pickle.dumps(clean.points)

    def test_pool_death_degrades_and_stays_bit_exact(self):
        task = _task()
        clean = SweepExecutor("serial").run(_VALUES, task, seed=5)
        plan = FaultPlan(specs=(FaultSpec("kill", 2, attempts=1),))
        report = SweepExecutor(
            "process",
            max_workers=2,
            schedule="adaptive",
            retry=_fast_retry(2),
        ).run(_VALUES, task, seed=5, faults=plan)
        assert report.degraded
        assert report.failed == 0
        assert pickle.dumps(report.points) == pickle.dumps(clean.points)


# -- convergence surfacing ----------------------------------------------------


class TestConvergenceReporting:
    def _mixed_report(self, schedule: str = "adaptive"):
        # 2.0/3.0 m run out of bit budget before 20 errors; the far
        # points converge almost immediately.
        task = _task(target_errors=20, max_bits=30_000)
        return SweepExecutor("serial", schedule=schedule).run(
            [2.0, 3.0, 4.0, 4.4, 5.0], task, seed=5
        )

    def test_report_counts_converged_vs_budget_capped(self):
        report = self._mixed_report()
        assert report.converged + report.unconverged == 5
        assert report.unconverged >= 1
        for point in report.points:
            assert point.metric.is_converged in (True, False)

    def test_summary_mentions_convergence_and_rounds(self):
        report = self._mixed_report()
        text = report.summary()
        assert "hit target_errors" in text
        assert "hit the bit budget" in text
        assert "adaptive schedule" in text

    def test_failure_summary_mentions_unconverged_points(self):
        report = self._mixed_report()
        text = report.failure_summary()
        assert "unconverged" in text
        assert "bit budget hit" in text

    def test_uniform_schedule_reports_convergence_too(self):
        report = self._mixed_report(schedule="uniform")
        assert report.converged + report.unconverged == 5
        assert "hit target_errors" in report.summary()
        assert "adaptive schedule" not in report.summary()

    def test_scalar_metrics_do_not_count(self):
        report = SweepExecutor("serial").run(
            [1.0, 2.0], FunctionTask(lambda v: v * v)
        )
        assert report.converged == 0 and report.unconverged == 0
        assert report.failure_summary() == ""

    def test_adaptive_outcome_counters(self):
        task = _task(target_errors=20, max_bits=30_000)
        vals = [2.0, 4.4]
        children = np.random.SeedSequence(5).spawn(len(vals))
        finished: dict[int, object] = {}

        from repro.sim.executor import _PointState

        states = {i: _PointState() for i in range(len(vals))}
        outcome = run_adaptive(
            task=task,
            vals=vals,
            children=list(children),
            pending=[0, 1],
            states=states,
            finish_ok=lambda i, metric, s: finished.__setitem__(i, metric),
            finish_failed=lambda i: finished.__setitem__(i, None),
            backend="serial",
            workers=1,
            timeout_s=None,
            retry=RetryPolicy(),
            seed=5,
        )
        assert isinstance(outcome, AdaptiveOutcome)
        assert set(finished) == {0, 1}
        assert outcome.chunks == sum(outcome.chunks_per_point.values())
        # the unconverged near point (2.0 m) needs more chunks than the
        # cliff point — that asymmetry is the whole reason to adapt
        assert outcome.chunks_per_point[0] > outcome.chunks_per_point[1]
        assert outcome.rounds == max(outcome.chunks_per_point.values())
