"""Tests for repro.dsp.resample."""

import numpy as np
import pytest

from repro.dsp.resample import decimate_signal, resample_signal
from repro.dsp.signal import Signal


class TestResample:
    def test_doubling_rate_doubles_samples(self):
        sig = Signal.tone(10e3, 1e6, 1e-3)
        up = resample_signal(sig, 2e6)
        assert up.sample_rate == pytest.approx(2e6)
        assert up.num_samples == 2 * sig.num_samples

    def test_tone_survives_resampling(self):
        sig = Signal.tone(10e3, 1e6, 4e-3)
        up = resample_signal(sig, 2e6)
        phase = np.unwrap(np.angle(up.samples[100:-100]))
        freq = np.diff(phase) * up.sample_rate / (2 * np.pi)
        assert np.median(freq) == pytest.approx(10e3, rel=1e-3)

    def test_identity_when_rates_match(self):
        sig = Signal.tone(1e3, 1e6, 1e-4)
        out = resample_signal(sig, 1e6)
        assert np.array_equal(out.samples, sig.samples)
        assert out.samples is not sig.samples  # a copy, not a view

    def test_power_preserved(self):
        sig = Signal.tone(10e3, 1e6, 4e-3)
        down = resample_signal(sig, 0.5e6)
        assert down.power() == pytest.approx(sig.power(), rel=0.05)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            resample_signal(Signal.zeros(4, 1e6), 0.0)


class TestDecimate:
    def test_factor_reduces_rate_and_length(self):
        sig = Signal.tone(1e3, 1e6, 1e-3)
        out = decimate_signal(sig, 4)
        assert out.sample_rate == pytest.approx(0.25e6)
        assert out.num_samples == pytest.approx(sig.num_samples / 4, abs=1)

    def test_factor_one_is_copy(self):
        sig = Signal.tone(1e3, 1e6, 1e-4)
        out = decimate_signal(sig, 1)
        assert np.array_equal(out.samples, sig.samples)

    def test_antialiasing_removes_high_tone(self):
        # 400 kHz tone aliases without filtering at factor 4 (new Nyquist 125 kHz)
        sig = Signal.tone(400e3, 1e6, 2e-3)
        out = decimate_signal(sig, 4)
        assert out.power() < 0.05

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            decimate_signal(Signal.zeros(4, 1e6), 0)
