"""Equivalence tests for the vectorized hot-path kernels.

Every vectorized kernel in this PR keeps its reference implementation
alive; these tests pin the contract that vectorization changed *speed
only*:

* the array-wide Viterbi decodes **byte-identically** to the nested
  reference loop over randomized polynomials, constraint lengths and
  message lengths (including metric ties, which hard decisions hit
  constantly);
* the byte-table CRC and LUT constellation mappers are integer-exact
  drop-ins for the bit-loop / dict-lookup references;
* :func:`simulate_link_batch` reproduces consecutive
  :func:`simulate_link` calls **bit for bit** (every scalar field and
  every sample of the decoded symbol arrays) across modulations,
  subcarrier/doppler/ADC variants — and, since the stochastic-channel
  kernels landed, Rician fading and blockage windows too (there is no
  serial fallback left to hide behind);
* :meth:`MultipathChannel.apply` (cached tap grid + shared-FFT kernel)
  and the row-batched :func:`apply_channels_to_rows` reproduce the
  per-``Signal`` reference implementation sample for sample;
* the ``backend="vectorized"`` BER estimator returns byte-identical
  :class:`BerEstimate`\\ s to the serial path for every chunk size,
  randomized Rician K-factors and blockage plans included;
* :meth:`ResultCache.prune` evicts strictly least-recently-used.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.channel.blockage import BlockageEvent
from repro.channel.environment import Environment
from repro.channel.multipath import (
    MultipathChannel,
    PathComponent,
    apply_channels_to_rows,
    rician_channel,
)
from repro.dsp.signal import Signal
from repro.core.coding import append_crc32, check_crc32, crc32
from repro.core.convolutional import ConvolutionalCode, K7_CODE
from repro.core.link import LinkConfig, simulate_link
from repro.core.modulation import available_schemes, get_scheme
from repro.sim.batch import (
    BatchLinkSimulator,
    check_crc32_fast,
    crc32_tail_bits_fast,
    crc_bits_fast,
    fast_modulate,
    fast_symbol_indices,
    simulate_link_batch,
)
from repro.sim.cache import MISS, ResultCache
from repro.sim.monte_carlo import estimate_link_ber


# -- Viterbi: vectorized == reference ----------------------------------------


def _random_code(rng: np.random.Generator) -> ConvolutionalCode:
    constraint = int(rng.integers(2, 7))
    num_polys = int(rng.integers(2, 4))
    limit = 1 << constraint
    polys = tuple(int(rng.integers(1, limit)) for _ in range(num_polys))
    return ConvolutionalCode(constraint_length=constraint, polynomials=polys)


class TestViterbiBackendEquivalence:
    def test_randomized_codes_hard_decisions(self, rng):
        """Byte-identical decodes over random codes, lengths and errors.

        Hard decisions produce integer-valued path metrics, so metric
        ties are common — this exercises the tie-break rule match."""
        for _ in range(25):
            code = _random_code(rng)
            num_bits = int(rng.integers(1, 80))
            message = rng.integers(0, 2, size=num_bits).astype(np.int8)
            coded = code.encode(message)
            num_flips = int(rng.integers(0, 1 + coded.size // 8))
            if num_flips:
                flips = rng.choice(coded.size, size=num_flips, replace=False)
                coded[flips] ^= 1
            reference = code.decode_hard(coded, backend="reference")
            vectorized = code.decode_hard(coded, backend="vectorized")
            assert np.array_equal(reference, vectorized), (
                f"K={code.constraint_length} polys={code.polynomials} "
                f"bits={num_bits} flips={num_flips}"
            )

    def test_randomized_soft_decisions(self, rng):
        for _ in range(10):
            code = _random_code(rng)
            num_bits = int(rng.integers(1, 60))
            message = rng.integers(0, 2, size=num_bits).astype(np.int8)
            soft = 1.0 - 2.0 * code.encode(message).astype(np.float64)
            soft += 0.8 * rng.standard_normal(soft.size)
            reference = code.decode_soft(soft, backend="reference")
            vectorized = code.decode_soft(soft, backend="vectorized")
            assert np.array_equal(reference, vectorized)

    def test_k7_long_message(self, rng):
        message = rng.integers(0, 2, size=400).astype(np.int8)
        coded = K7_CODE.encode(message)
        coded[::37] ^= 1
        assert np.array_equal(
            K7_CODE.decode_hard(coded, backend="reference"),
            K7_CODE.decode_hard(coded, backend="vectorized"),
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            K7_CODE.decode_hard(np.zeros(40, dtype=np.int8), backend="numba")


# -- fast CRC / constellation LUTs: integer-exact ----------------------------


class TestFastPrimitives:
    def test_crc_matches_reference_all_lengths(self, rng):
        """Byte-table CRC == bit-loop CRC, incl. non-multiple-of-8 tails."""
        for size in [0, 1, 7, 8, 9, 31, 32, 33, 64, 100, 2048]:
            bits = rng.integers(0, 2, size=size).astype(np.int8)
            assert crc_bits_fast(bits) == crc32(bits)

    def test_crc_tail_matches_append_crc32(self, rng):
        bits = rng.integers(0, 2, size=96).astype(np.int8)
        assert np.array_equal(crc32_tail_bits_fast(bits), append_crc32(bits)[-32:])

    def test_check_crc_agrees_with_reference(self, rng):
        bits = rng.integers(0, 2, size=64).astype(np.int8)
        protected = append_crc32(bits)
        assert check_crc32_fast(protected) is True
        assert check_crc32_fast(protected) == check_crc32(protected)
        corrupted = protected.copy()
        corrupted[5] ^= 1
        assert check_crc32_fast(corrupted) is False
        assert check_crc32_fast(corrupted) == check_crc32(corrupted)

    @pytest.mark.parametrize("name", available_schemes())
    def test_symbol_mapping_matches_reference(self, name, rng):
        constellation = get_scheme(name).constellation
        k = constellation.bits_per_symbol
        bits = rng.integers(0, 2, size=60 * k).astype(np.int8)
        assert np.array_equal(
            fast_symbol_indices(name, bits), constellation.symbol_indices(bits)
        )
        assert np.array_equal(fast_modulate(name, bits), constellation.modulate(bits))

    def test_symbol_mapping_broadcasts_over_frames(self, rng):
        bits = rng.integers(0, 2, size=(3, 40)).astype(np.int8)
        batched = fast_symbol_indices("QPSK", bits)
        constellation = get_scheme("QPSK").constellation
        for f in range(3):
            assert np.array_equal(batched[f], constellation.symbol_indices(bits[f]))

    def test_symbol_mapping_rejects_ragged_bits(self):
        with pytest.raises(ValueError, match="divisible"):
            fast_symbol_indices("QPSK", np.zeros(7, dtype=np.int8))


# -- batched frame chain: bit-exact vs simulate_link -------------------------


def _batch_configs() -> dict[str, LinkConfig]:
    base = LinkConfig()
    return {
        "default_qpsk": base,
        "office_13m": LinkConfig(
            distance_m=13.0, environment=Environment.typical_office()
        ),
        "ook": LinkConfig(tag=dataclasses.replace(base.tag, modulation="OOK")),
        "qam16": LinkConfig(tag=dataclasses.replace(base.tag, modulation="16QAM")),
        "subcarrier": LinkConfig(tag=dataclasses.replace(base.tag, subcarrier_hz=20e6)),
        "doppler": LinkConfig(radial_velocity_m_s=2.0),
        "no_adc": LinkConfig(ap=dataclasses.replace(base.ap, adc=None)),
        "rician": LinkConfig(rician_k_db=10.0),
        "rician_far": LinkConfig(
            distance_m=11.0, rician_k_db=6.0, num_nlos_paths=5
        ),
        "blockage": LinkConfig(
            blockage_events=(
                BlockageEvent(0.1e-4, 0.5e-4, 18.0),
                BlockageEvent(0.4e-4, 0.8e-4, 6.0),  # overlapping window
            )
        ),
        "rician_blockage_doppler": LinkConfig(
            rician_k_db=9.0,
            radial_velocity_m_s=1.5,
            blockage_events=(BlockageEvent(0.2e-4, 0.6e-4, 12.0),),
        ),
    }


def _assert_links_identical(reference, batched, label: str) -> None:
    scalar_fields = [
        "num_payload_bits", "bit_errors", "ber", "frame_success",
        "snr_analytic_db", "snr_measured_db", "evm",
    ]
    for fld in scalar_fields:
        assert getattr(reference, fld) == getattr(batched, fld), f"{label}: {fld}"
    ref_rx, got_rx = reference.receiver, batched.receiver
    for fld in [
        "detected", "header_ok", "payload_crc_ok", "start_sample",
        "snr_estimate_db", "evm",
    ]:
        assert getattr(ref_rx, fld) == getattr(got_rx, fld), f"{label}: rx.{fld}"
    assert (ref_rx.payload_bits is None) == (got_rx.payload_bits is None), label
    if ref_rx.payload_bits is not None:
        assert np.array_equal(ref_rx.payload_bits, got_rx.payload_bits), label
    assert (ref_rx.payload_symbols is None) == (got_rx.payload_symbols is None), label
    if ref_rx.payload_symbols is not None:
        # bit-exact, not allclose: the kernels reproduce the reference's
        # floating-point operation order sample for sample
        assert np.array_equal(
            np.asarray(ref_rx.payload_symbols), np.asarray(got_rx.payload_symbols)
        ), label


class TestBatchLinkBitExactness:
    @pytest.mark.parametrize("name", sorted(_batch_configs()))
    def test_matches_consecutive_simulate_link_calls(self, name):
        config = _batch_configs()[name]
        num_frames = 3
        rng_ref = np.random.default_rng(0)
        reference = [simulate_link(config, rng=rng_ref) for _ in range(num_frames)]
        batched = simulate_link_batch(
            config, num_frames, rng=np.random.default_rng(0)
        )
        for f in range(num_frames):
            _assert_links_identical(reference[f], batched[f], f"{name}[{f}]")

    def test_rician_batches_without_fallback(self):
        """The old per-frame serial fallback for fading configs is gone."""
        simulator = BatchLinkSimulator(LinkConfig(rician_k_db=10.0))
        assert not hasattr(simulator, "supports_fast_path")
        results = simulator.simulate(2, np.random.default_rng(0))
        assert len(results) == 2

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="num_payload_bits"):
            BatchLinkSimulator(LinkConfig(), num_payload_bits=0)
        with pytest.raises(ValueError, match="num_frames"):
            simulate_link_batch(LinkConfig(), num_frames=0)


# -- stochastic-channel kernels: randomized property tests --------------------


def _random_stochastic_config(rng: np.random.Generator) -> LinkConfig:
    """A random fading/blockage operating point (always at least one of
    the two stochastic stages enabled — plain configs are covered by
    ``_batch_configs``)."""
    use_rician = bool(rng.random() < 0.7)
    events = []
    for _ in range(int(rng.integers(0, 3))):
        start = float(rng.uniform(0.0, 0.8e-4))
        events.append(
            BlockageEvent(
                start_s=start,
                stop_s=start + float(rng.uniform(0.05e-4, 0.5e-4)),
                attenuation_db=float(rng.uniform(3.0, 25.0)),
            )
        )
    if not use_rician and not events:
        use_rician = True
    kwargs: dict = {}
    if use_rician:
        kwargs.update(
            rician_k_db=float(rng.uniform(-3.0, 15.0)),
            num_nlos_paths=int(rng.integers(1, 6)),
            max_excess_delay_s=float(rng.uniform(5e-9, 60e-9)),
        )
    return LinkConfig(
        distance_m=float(rng.uniform(1.0, 14.0)),
        blockage_events=tuple(events),
        **kwargs,
    )


class TestMultipathKernelEquivalence:
    """Cached-tap-grid apply and the rows kernel == per-Signal reference."""

    FS = 80e6

    def test_apply_matches_reference_randomized(self, rng):
        for _ in range(12):
            channel = rician_channel(
                float(rng.uniform(-3.0, 15.0)),
                int(rng.integers(1, 6)),
                float(rng.uniform(5e-9, 60e-9)),
                rng,
            )
            samples = rng.standard_normal(400) + 1j * rng.standard_normal(400)
            sig = Signal(samples, self.FS)
            fast = channel.apply(sig)
            ref = channel._apply_reference(sig)
            assert np.array_equal(fast.samples, ref.samples)
            assert fast.sample_rate == ref.sample_rate

    def test_integer_sample_delays_take_direct_path(self, rng):
        """Whole-sample delays skip the FFT operator — still bit-exact."""
        channel = MultipathChannel(
            paths=(
                PathComponent(delay_s=0.0, gain=0.8 + 0.1j),
                PathComponent(delay_s=2.0 / self.FS, gain=0.3j),
                PathComponent(delay_s=1.0 / self.FS, gain=-0.2 + 0.0j),
            )
        )
        samples = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        sig = Signal(samples, self.FS)
        assert np.array_equal(
            channel.apply(sig).samples, channel._apply_reference(sig).samples
        )

    def test_rows_kernel_matches_per_row_apply(self, rng):
        frames = 5
        rows = (
            rng.standard_normal((frames, 300))
            + 1j * rng.standard_normal((frames, 300))
        )
        channels = [
            rician_channel(6.0, int(rng.integers(1, 5)), 30e-9, rng)
            for _ in range(frames)
        ]
        batched = apply_channels_to_rows(rows, self.FS, channels)
        for f in range(frames):
            expected = channels[f].apply(Signal(rows[f], self.FS)).samples
            assert np.array_equal(batched[f], expected), f"frame {f}"


class TestStochasticChannelProperties:
    """Randomized Rician K / blockage plans: batch == serial, bit for bit."""

    def test_batch_matches_serial_randomized_configs(self):
        rng = np.random.default_rng(2024)
        for trial in range(6):
            config = _random_stochastic_config(rng)
            num_frames = 3
            rng_ref = np.random.default_rng(trial)
            reference = [
                simulate_link(config, rng=rng_ref) for _ in range(num_frames)
            ]
            batched = simulate_link_batch(
                config, num_frames, rng=np.random.default_rng(trial)
            )
            for f in range(num_frames):
                _assert_links_identical(
                    reference[f], batched[f], f"trial{trial}[{f}]"
                )

    @pytest.mark.parametrize("chunk_frames", [1, 3, 5])
    def test_estimator_bit_exact_across_chunk_sizes(self, chunk_frames):
        rng = np.random.default_rng(7)
        for _ in range(3):
            config = _random_stochastic_config(rng)
            kwargs = dict(
                target_errors=8,
                max_bits=6144,
                bits_per_frame=512,
                seed=11,
                chunk_frames=chunk_frames,
            )
            serial = estimate_link_ber(config, backend="serial", **kwargs)
            vectorized = estimate_link_ber(config, backend="vectorized", **kwargs)
            assert serial == vectorized, config


class TestEstimatorBackendEquivalence:
    @pytest.mark.parametrize("chunk_frames", [1, 4, 7])
    def test_vectorized_backend_byte_identical(self, chunk_frames):
        config = LinkConfig(
            distance_m=12.5, environment=Environment.typical_office()
        )
        kwargs = dict(
            target_errors=5,
            max_bits=8192,
            bits_per_frame=1024,
            seed=3,
            chunk_frames=chunk_frames,
        )
        serial = estimate_link_ber(config, backend="serial", **kwargs)
        vectorized = estimate_link_ber(config, backend="vectorized", **kwargs)
        assert serial == vectorized

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            estimate_link_ber(LinkConfig(), backend="gpu")


# -- ResultCache LRU prune ----------------------------------------------------


class TestCachePrune:
    def _filled_cache(self, tmp_path, count=4):
        cache = ResultCache(tmp_path / "cache", version="v")
        keys = []
        for i in range(count):
            key = cache.key_for(index=i)
            cache.put(key, np.zeros(64))
            keys.append(key)
            # strictly increasing mtimes regardless of filesystem resolution
            os.utime(cache._path(key), (1_000_000 + i, 1_000_000 + i))
        return cache, keys

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        entry_size = cache.size_bytes() // len(keys)
        removed = cache.prune(max_bytes=2 * entry_size)
        assert removed == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache

    def test_get_refreshes_recency(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert cache.get(keys[0]) is not MISS  # touch the oldest entry
        now = time.time()
        assert cache._path(keys[0]).stat().st_mtime >= now - 60
        entry_size = cache.size_bytes() // len(keys)
        cache.prune(max_bytes=entry_size)
        assert keys[0] in cache  # survived: most recently used
        assert keys[1] not in cache

    def test_prune_zero_empties(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert cache.prune(max_bytes=0) == len(keys)
        assert len(cache) == 0

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path)
        assert cache.prune(max_bytes=cache.size_bytes()) == 0

    def test_prune_rejects_negative(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path, count=1)
        with pytest.raises(ValueError, match="non-negative"):
            cache.prune(max_bytes=-1)

    def test_prune_counts_as_invalidations(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path)
        cache.prune(max_bytes=0)
        assert cache.stats.invalidations == 4
