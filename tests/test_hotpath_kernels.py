"""Equivalence tests for the vectorized hot-path kernels.

Every vectorized kernel in this PR keeps its reference implementation
alive; these tests pin the contract that vectorization changed *speed
only*:

* the array-wide Viterbi decodes **byte-identically** to the nested
  reference loop over randomized polynomials, constraint lengths and
  message lengths (including metric ties, which hard decisions hit
  constantly);
* the byte-table CRC and LUT constellation mappers are integer-exact
  drop-ins for the bit-loop / dict-lookup references;
* :func:`simulate_link_batch` reproduces consecutive
  :func:`simulate_link` calls **bit for bit** (every scalar field and
  every sample of the decoded symbol arrays) across modulations,
  subcarrier/doppler/ADC variants and the Rician fallback;
* the ``backend="vectorized"`` BER estimator returns byte-identical
  :class:`BerEstimate`\\ s to the serial path for every chunk size;
* :meth:`ResultCache.prune` evicts strictly least-recently-used.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.coding import append_crc32, check_crc32, crc32
from repro.core.convolutional import ConvolutionalCode, K7_CODE
from repro.core.link import LinkConfig, simulate_link
from repro.core.modulation import available_schemes, get_scheme
from repro.sim.batch import (
    BatchLinkSimulator,
    check_crc32_fast,
    crc32_tail_bits_fast,
    crc_bits_fast,
    fast_modulate,
    fast_symbol_indices,
    simulate_link_batch,
)
from repro.sim.cache import MISS, ResultCache
from repro.sim.monte_carlo import estimate_link_ber


# -- Viterbi: vectorized == reference ----------------------------------------


def _random_code(rng: np.random.Generator) -> ConvolutionalCode:
    constraint = int(rng.integers(2, 7))
    num_polys = int(rng.integers(2, 4))
    limit = 1 << constraint
    polys = tuple(int(rng.integers(1, limit)) for _ in range(num_polys))
    return ConvolutionalCode(constraint_length=constraint, polynomials=polys)


class TestViterbiBackendEquivalence:
    def test_randomized_codes_hard_decisions(self, rng):
        """Byte-identical decodes over random codes, lengths and errors.

        Hard decisions produce integer-valued path metrics, so metric
        ties are common — this exercises the tie-break rule match."""
        for _ in range(25):
            code = _random_code(rng)
            num_bits = int(rng.integers(1, 80))
            message = rng.integers(0, 2, size=num_bits).astype(np.int8)
            coded = code.encode(message)
            num_flips = int(rng.integers(0, 1 + coded.size // 8))
            if num_flips:
                flips = rng.choice(coded.size, size=num_flips, replace=False)
                coded[flips] ^= 1
            reference = code.decode_hard(coded, backend="reference")
            vectorized = code.decode_hard(coded, backend="vectorized")
            assert np.array_equal(reference, vectorized), (
                f"K={code.constraint_length} polys={code.polynomials} "
                f"bits={num_bits} flips={num_flips}"
            )

    def test_randomized_soft_decisions(self, rng):
        for _ in range(10):
            code = _random_code(rng)
            num_bits = int(rng.integers(1, 60))
            message = rng.integers(0, 2, size=num_bits).astype(np.int8)
            soft = 1.0 - 2.0 * code.encode(message).astype(np.float64)
            soft += 0.8 * rng.standard_normal(soft.size)
            reference = code.decode_soft(soft, backend="reference")
            vectorized = code.decode_soft(soft, backend="vectorized")
            assert np.array_equal(reference, vectorized)

    def test_k7_long_message(self, rng):
        message = rng.integers(0, 2, size=400).astype(np.int8)
        coded = K7_CODE.encode(message)
        coded[::37] ^= 1
        assert np.array_equal(
            K7_CODE.decode_hard(coded, backend="reference"),
            K7_CODE.decode_hard(coded, backend="vectorized"),
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            K7_CODE.decode_hard(np.zeros(40, dtype=np.int8), backend="numba")


# -- fast CRC / constellation LUTs: integer-exact ----------------------------


class TestFastPrimitives:
    def test_crc_matches_reference_all_lengths(self, rng):
        """Byte-table CRC == bit-loop CRC, incl. non-multiple-of-8 tails."""
        for size in [0, 1, 7, 8, 9, 31, 32, 33, 64, 100, 2048]:
            bits = rng.integers(0, 2, size=size).astype(np.int8)
            assert crc_bits_fast(bits) == crc32(bits)

    def test_crc_tail_matches_append_crc32(self, rng):
        bits = rng.integers(0, 2, size=96).astype(np.int8)
        assert np.array_equal(crc32_tail_bits_fast(bits), append_crc32(bits)[-32:])

    def test_check_crc_agrees_with_reference(self, rng):
        bits = rng.integers(0, 2, size=64).astype(np.int8)
        protected = append_crc32(bits)
        assert check_crc32_fast(protected) is True
        assert check_crc32_fast(protected) == check_crc32(protected)
        corrupted = protected.copy()
        corrupted[5] ^= 1
        assert check_crc32_fast(corrupted) is False
        assert check_crc32_fast(corrupted) == check_crc32(corrupted)

    @pytest.mark.parametrize("name", available_schemes())
    def test_symbol_mapping_matches_reference(self, name, rng):
        constellation = get_scheme(name).constellation
        k = constellation.bits_per_symbol
        bits = rng.integers(0, 2, size=60 * k).astype(np.int8)
        assert np.array_equal(
            fast_symbol_indices(name, bits), constellation.symbol_indices(bits)
        )
        assert np.array_equal(fast_modulate(name, bits), constellation.modulate(bits))

    def test_symbol_mapping_broadcasts_over_frames(self, rng):
        bits = rng.integers(0, 2, size=(3, 40)).astype(np.int8)
        batched = fast_symbol_indices("QPSK", bits)
        constellation = get_scheme("QPSK").constellation
        for f in range(3):
            assert np.array_equal(batched[f], constellation.symbol_indices(bits[f]))

    def test_symbol_mapping_rejects_ragged_bits(self):
        with pytest.raises(ValueError, match="divisible"):
            fast_symbol_indices("QPSK", np.zeros(7, dtype=np.int8))


# -- batched frame chain: bit-exact vs simulate_link -------------------------


def _batch_configs() -> dict[str, LinkConfig]:
    base = LinkConfig()
    return {
        "default_qpsk": base,
        "office_13m": LinkConfig(
            distance_m=13.0, environment=Environment.typical_office()
        ),
        "ook": LinkConfig(tag=dataclasses.replace(base.tag, modulation="OOK")),
        "qam16": LinkConfig(tag=dataclasses.replace(base.tag, modulation="16QAM")),
        "subcarrier": LinkConfig(tag=dataclasses.replace(base.tag, subcarrier_hz=20e6)),
        "doppler": LinkConfig(radial_velocity_m_s=2.0),
        "no_adc": LinkConfig(ap=dataclasses.replace(base.ap, adc=None)),
        "rician_fallback": LinkConfig(rician_k_db=10.0),
    }


def _assert_links_identical(reference, batched, label: str) -> None:
    scalar_fields = [
        "num_payload_bits", "bit_errors", "ber", "frame_success",
        "snr_analytic_db", "snr_measured_db", "evm",
    ]
    for fld in scalar_fields:
        assert getattr(reference, fld) == getattr(batched, fld), f"{label}: {fld}"
    ref_rx, got_rx = reference.receiver, batched.receiver
    for fld in [
        "detected", "header_ok", "payload_crc_ok", "start_sample",
        "snr_estimate_db", "evm",
    ]:
        assert getattr(ref_rx, fld) == getattr(got_rx, fld), f"{label}: rx.{fld}"
    assert (ref_rx.payload_bits is None) == (got_rx.payload_bits is None), label
    if ref_rx.payload_bits is not None:
        assert np.array_equal(ref_rx.payload_bits, got_rx.payload_bits), label
    assert (ref_rx.payload_symbols is None) == (got_rx.payload_symbols is None), label
    if ref_rx.payload_symbols is not None:
        # bit-exact, not allclose: the kernels reproduce the reference's
        # floating-point operation order sample for sample
        assert np.array_equal(
            np.asarray(ref_rx.payload_symbols), np.asarray(got_rx.payload_symbols)
        ), label


class TestBatchLinkBitExactness:
    @pytest.mark.parametrize("name", sorted(_batch_configs()))
    def test_matches_consecutive_simulate_link_calls(self, name):
        config = _batch_configs()[name]
        num_frames = 3
        rng_ref = np.random.default_rng(0)
        reference = [simulate_link(config, rng=rng_ref) for _ in range(num_frames)]
        batched = simulate_link_batch(
            config, num_frames, rng=np.random.default_rng(0)
        )
        for f in range(num_frames):
            _assert_links_identical(reference[f], batched[f], f"{name}[{f}]")

    def test_rician_uses_fallback_path(self):
        simulator = BatchLinkSimulator(LinkConfig(rician_k_db=10.0))
        assert simulator.supports_fast_path is False

    def test_fast_path_flag_set_for_default(self):
        assert BatchLinkSimulator(LinkConfig()).supports_fast_path is True

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="num_payload_bits"):
            BatchLinkSimulator(LinkConfig(), num_payload_bits=0)
        with pytest.raises(ValueError, match="num_frames"):
            simulate_link_batch(LinkConfig(), num_frames=0)


class TestEstimatorBackendEquivalence:
    @pytest.mark.parametrize("chunk_frames", [1, 4, 7])
    def test_vectorized_backend_byte_identical(self, chunk_frames):
        config = LinkConfig(
            distance_m=12.5, environment=Environment.typical_office()
        )
        kwargs = dict(
            target_errors=5,
            max_bits=8192,
            bits_per_frame=1024,
            seed=3,
            chunk_frames=chunk_frames,
        )
        serial = estimate_link_ber(config, backend="serial", **kwargs)
        vectorized = estimate_link_ber(config, backend="vectorized", **kwargs)
        assert serial == vectorized

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            estimate_link_ber(LinkConfig(), backend="gpu")


# -- ResultCache LRU prune ----------------------------------------------------


class TestCachePrune:
    def _filled_cache(self, tmp_path, count=4):
        cache = ResultCache(tmp_path / "cache", version="v")
        keys = []
        for i in range(count):
            key = cache.key_for(index=i)
            cache.put(key, np.zeros(64))
            keys.append(key)
            # strictly increasing mtimes regardless of filesystem resolution
            os.utime(cache._path(key), (1_000_000 + i, 1_000_000 + i))
        return cache, keys

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        entry_size = cache.size_bytes() // len(keys)
        removed = cache.prune(max_bytes=2 * entry_size)
        assert removed == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache

    def test_get_refreshes_recency(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert cache.get(keys[0]) is not MISS  # touch the oldest entry
        now = time.time()
        assert cache._path(keys[0]).stat().st_mtime >= now - 60
        entry_size = cache.size_bytes() // len(keys)
        cache.prune(max_bytes=entry_size)
        assert keys[0] in cache  # survived: most recently used
        assert keys[1] not in cache

    def test_prune_zero_empties(self, tmp_path):
        cache, keys = self._filled_cache(tmp_path)
        assert cache.prune(max_bytes=0) == len(keys)
        assert len(cache) == 0

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path)
        assert cache.prune(max_bytes=cache.size_bytes()) == 0

    def test_prune_rejects_negative(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path, count=1)
        with pytest.raises(ValueError, match="non-negative"):
            cache.prune(max_bytes=-1)

    def test_prune_counts_as_invalidations(self, tmp_path):
        cache, _ = self._filled_cache(tmp_path)
        cache.prune(max_bytes=0)
        assert cache.stats.invalidations == 4
