"""Tests for repro.dsp.measure."""

import math

import numpy as np
import pytest

from repro.dsp.measure import (
    bit_error_rate,
    count_bit_errors,
    evm_rms,
    evm_to_snr_db,
    measure_snr,
    q_function,
    q_function_inverse,
    signal_power,
    signal_power_dbm,
)
from repro.dsp.signal import Signal


class TestPower:
    def test_signal_power(self):
        assert signal_power(Signal(2 * np.ones(5), 1e6)) == pytest.approx(4.0)

    def test_dbm_of_one_milliwatt(self):
        amp = math.sqrt(1e-3)
        sig = Signal(np.full(10, amp), 1e6)
        assert signal_power_dbm(sig) == pytest.approx(0.0, abs=1e-9)

    def test_dbm_of_zero_raises(self):
        with pytest.raises(ValueError):
            signal_power_dbm(Signal.zeros(5, 1e6))


class TestMeasureSnr:
    def test_known_snr_recovered(self, rng):
        n = 200_000
        ref = (2 * rng.integers(0, 2, n) - 1).astype(complex)
        noise = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * math.sqrt(
            0.05
        )
        received = 3.0 * np.exp(1j * 0.4) * ref + noise
        expected = 10 * math.log10(9.0 / 0.1)
        assert measure_snr(received, ref) == pytest.approx(expected, abs=0.1)

    def test_gain_and_phase_invariant(self, rng):
        n = 10_000
        ref = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        received = 0.01 * np.exp(1j * 2.7) * ref
        # numerically: residual at double-precision rounding, > 200 dB
        assert measure_snr(received, ref) > 200.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            measure_snr(np.ones(3), np.ones(4))

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            measure_snr(np.ones(4), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            measure_snr(np.zeros(0), np.zeros(0))


class TestEvm:
    def test_perfect_signal_zero_evm(self, rng):
        ref = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert evm_rms(2.0 * ref, ref) == pytest.approx(0.0, abs=1e-12)

    def test_known_evm(self, rng):
        n = 500_000
        ref = np.exp(1j * rng.uniform(0, 2 * np.pi, n))
        error = 0.1 / math.sqrt(2) * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        )
        assert evm_rms(ref + error, ref) == pytest.approx(0.1, rel=0.05)

    def test_evm_snr_round_trip(self):
        assert evm_to_snr_db(0.1) == pytest.approx(20.0)

    def test_evm_to_snr_rejects_zero(self):
        with pytest.raises(ValueError):
            evm_to_snr_db(0.0)


class TestBitErrors:
    def test_count(self):
        sent = np.array([0, 1, 1, 0])
        got = np.array([0, 0, 1, 1])
        assert count_bit_errors(sent, got) == 2

    def test_rate(self):
        sent = np.zeros(10, dtype=int)
        got = np.concatenate([np.ones(2, dtype=int), np.zeros(8, dtype=int)])
        assert bit_error_rate(sent, got) == pytest.approx(0.2)

    def test_empty_rate_is_zero(self):
        assert bit_error_rate(np.zeros(0), np.zeros(0)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            count_bit_errors(np.zeros(3), np.zeros(4))


class TestQFunction:
    def test_q_of_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        # Q(1) ~ 0.1587
        assert float(q_function(1.0)) == pytest.approx(0.158655, rel=1e-4)

    def test_symmetry(self):
        assert float(q_function(-1.0)) == pytest.approx(1.0 - float(q_function(1.0)))

    def test_inverse_round_trip(self):
        for p in (0.4, 0.1, 1e-3, 1e-6):
            assert float(q_function(q_function_inverse(p))) == pytest.approx(p, rel=1e-6)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 2.0])
    def test_inverse_rejects_bad_probability(self, p):
        with pytest.raises(ValueError):
            q_function_inverse(p)

    def test_vectorised(self):
        out = q_function(np.array([0.0, 1.0]))
        assert out.shape == (2,)
