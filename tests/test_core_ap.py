"""Tests for repro.core.ap — the burst receiver."""

import numpy as np
import pytest

from repro.core.ap import AccessPoint, APConfig
from repro.core.tag import Tag, TagConfig
from repro.dsp.signal import Signal
from repro.rf.quantize import ADC


def _clean_burst(bits, modulation="QPSK", sps=8, amplitude=1e-3, phase=0.7, guard=200):
    config = TagConfig(modulation=modulation, samples_per_symbol=sps)
    tag = Tag(config)
    frame = tag.make_frame(bits)
    waveform, _ = tag.backscatter_waveform(frame)
    sig = waveform.scale(amplitude * np.exp(1j * phase)).pad(guard, guard)
    return frame, sig


class TestAPConfig:
    def test_tx_amplitude_is_sqrt_watts(self):
        config = APConfig(tx_power_dbm=30.0)  # 1 W
        assert config.tx_amplitude() == pytest.approx(1.0)

    def test_rejects_bad_pole(self):
        with pytest.raises(ValueError):
            APConfig(dc_block_pole=1.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            APConfig(sync_threshold_ratio=0.5)


class TestReceiveCleanBurst:
    @pytest.mark.parametrize("modulation", ["OOK", "BPSK", "QPSK", "8PSK", "16QAM"])
    def test_decodes_every_modulation(self, modulation, rng):
        bits = rng.integers(0, 2, 240).astype(np.int8)
        frame, sig = _clean_burst(bits, modulation=modulation)
        ap = AccessPoint(APConfig(adc=None, use_dc_block=False))
        result = ap.receive_burst(sig, samples_per_symbol=8)
        assert result.success
        assert result.header.modulation == modulation
        assert np.array_equal(result.payload_bits, frame.payload_bits)

    def test_detects_start_sample(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits, guard=300)
        ap = AccessPoint(APConfig(adc=None))
        result = ap.receive_burst(sig, samples_per_symbol=8)
        assert result.start_sample == 300

    def test_carrier_phase_irrelevant(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        ap = AccessPoint(APConfig(adc=None))
        for phase in (0.0, 1.0, 2.5, -2.0):
            frame, sig = _clean_burst(bits, phase=phase)
            result = ap.receive_burst(sig, samples_per_symbol=8)
            assert result.success

    def test_amplitude_scale_irrelevant(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        ap = AccessPoint(APConfig(adc=None))
        for amplitude in (1e-8, 1e-3, 1.0):
            frame, sig = _clean_burst(bits, amplitude=amplitude)
            result = ap.receive_burst(sig, samples_per_symbol=8)
            assert result.success, f"failed at amplitude {amplitude}"

    def test_reports_link_quality(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits)
        result = AccessPoint(APConfig(adc=None)).receive_burst(sig, 8)
        assert result.snr_estimate_db > 40
        assert result.evm < 0.05


class TestReceiveDegradedBurst:
    def test_no_burst_returns_not_detected(self, rng):
        noise = Signal(
            1e-6 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000)), 80e6
        )
        result = AccessPoint(APConfig(adc=None)).receive_burst(noise, 8)
        assert not result.detected
        assert not result.success

    def test_truncated_payload_header_ok_but_no_payload(self, rng):
        bits = rng.integers(0, 2, 512).astype(np.int8)
        _, sig = _clean_burst(bits)
        # cut the capture in the middle of the payload
        cut = Signal(sig.samples[: sig.num_samples - 1200], sig.sample_rate)
        result = AccessPoint(APConfig(adc=None)).receive_burst(cut, 8)
        assert result.detected
        assert result.header_ok
        assert not result.payload_crc_ok

    def test_strong_noise_fails_crc_not_crash(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits, amplitude=1.0)
        noisy = Signal(
            sig.samples + 0.8 * (rng.standard_normal(sig.num_samples)
                                 + 1j * rng.standard_normal(sig.num_samples)),
            sig.sample_rate,
        )
        result = AccessPoint(APConfig(adc=None)).receive_burst(noisy, 8)
        # any outcome is legal except an exception; success very unlikely
        assert isinstance(result.detected, bool)

    def test_rejects_bad_sps(self):
        with pytest.raises(ValueError):
            AccessPoint().receive_burst(Signal.zeros(10, 1e6), samples_per_symbol=1)


class TestConditioning:
    def test_dc_block_removes_leakage(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits, amplitude=1e-4)
        leak = Signal(np.full(sig.num_samples, 0.05 + 0.02j), sig.sample_rate)
        ap = AccessPoint(APConfig(adc=None, use_dc_block=True))
        result = ap.receive_burst(sig + leak, samples_per_symbol=8)
        assert result.success

    def test_without_dc_block_adc_dynamic_range_suffers(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits, amplitude=1e-6)
        leak = Signal(np.full(sig.num_samples, 0.05 + 0.02j), sig.sample_rate)
        composite = sig + leak
        with_block = AccessPoint(
            APConfig(adc=ADC(bits=8), use_dc_block=True)
        ).receive_burst(composite, 8)
        without_block = AccessPoint(
            APConfig(adc=ADC(bits=8), use_dc_block=False)
        ).receive_burst(composite, 8)
        assert with_block.success
        assert not without_block.success

    def test_skip_conditioning_flag(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.int8)
        _, sig = _clean_burst(bits)
        ap = AccessPoint(APConfig(adc=None))
        conditioned = ap.condition(sig)
        result = ap.receive_burst(conditioned, 8, skip_conditioning=True)
        assert result.success


class TestSubcarrierReception:
    def test_dehop_recovers_burst(self, rng):
        config = TagConfig(subcarrier_hz=20e6, samples_per_symbol=16)
        tag = Tag(config)
        bits = rng.integers(0, 2, 128).astype(np.int8)
        frame = tag.make_frame(bits)
        waveform, _ = tag.backscatter_waveform(frame)
        sig = waveform.scale(1e-3).pad(320, 320)
        ap = AccessPoint(APConfig(adc=None))
        result = ap.receive_burst(sig, samples_per_symbol=16, subcarrier_hz=20e6)
        assert result.success
        assert np.array_equal(result.payload_bits, frame.payload_bits)

    def test_without_dehop_burst_lost(self, rng):
        # Use a subcarrier that is NOT an integer multiple of the symbol
        # rate: when it is (e.g. exactly 2x), the hop degenerates to a
        # Manchester-like line code that a shifted integrate window can
        # accidentally demodulate.  2.4 cycles/symbol has no such trick.
        config = TagConfig(subcarrier_hz=24e6, samples_per_symbol=16)
        tag = Tag(config)
        bits = rng.integers(0, 2, 128).astype(np.int8)
        frame = tag.make_frame(bits)
        waveform, _ = tag.backscatter_waveform(frame)
        sig = waveform.scale(1e-3).pad(320, 320)
        result = AccessPoint(APConfig(adc=None)).receive_burst(sig, 16)
        assert not result.success
