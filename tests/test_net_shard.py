"""Sharded metro engine: byte-identity with the serial engine.

Covers :mod:`repro.net.shard` — the process-sharded twin of
:func:`~repro.net.deployment.run_multi_ap`.  The contract under test is
absolute: for any ``(config, seed)`` and any shard count, the sharded
run must produce the **same report pickle and the same event-trace
digest, byte for byte**, as the serial engine — including under
checkpoint/resume and injected shard-worker kills.  The digest covers
every event the serial engine processes in global ``(time, seq)``
order, so digest equality *is* the proof that the cross-shard merge
reconstructs the exact serial event sequence.

The example-based classes pin the claim at hand-picked configurations
that each stress one coupling channel (handoffs, relays, blockage,
commit delays straddling epoch boundaries, degenerate grids); the
hypothesis class then drives the same oracle across randomised
configurations and shard counts.
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    MultiAPConfig,
    MultiAPTask,
    run_multi_ap,
    run_multi_ap_sharded,
)
from repro.net.shard import ShardEpochTask, _assign_aps
from repro.sim.cache import ResultCache
from repro.sim.executor import SweepExecutor
from repro.sim.faults import FaultPlan, FaultSpec

_SEED = 7

#: Small metro run that still exercises every coupling channel the
#: shards must reproduce: a mobile minority (handoffs), a hotspot
#: (load imbalance for the LPT partitioner), and light blockage.
_FAST = dict(
    num_tags=40,
    num_slots=400,
    epoch_slots=50,
    ap_spacing_m=6.0,
    mobile_fraction=0.3,
    hotspot_fraction=0.25,
    blockage_rate_hz=0.5,
)


def _config(**overrides) -> MultiAPConfig:
    return MultiAPConfig(**{**_FAST, **overrides})


def _serial() -> SweepExecutor:
    return SweepExecutor("serial")


def _assert_identical(config, seed=_SEED, shards=3, **kwargs):
    """The acceptance oracle: sharded == serial, byte for byte."""
    serial = run_multi_ap(config, seed=seed)
    kwargs.setdefault("executor", _serial())
    sharded = run_multi_ap_sharded(config, seed=seed, shards=shards, **kwargs)
    assert sharded.trace_digest == serial.trace_digest
    assert pickle.dumps(sharded) == pickle.dumps(serial)
    return serial


class TestByteIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 9])
    def test_matches_serial_for_any_shard_count(self, shards):
        _assert_identical(_config(), shards=shards)

    def test_shard_count_beyond_ap_count_clamps(self):
        # 9 APs; asking for 50 shards must behave like 9, not crash
        _assert_identical(_config(), shards=50)

    def test_roaming_with_handoffs(self):
        # persistent keeps tags contending for the whole horizon, so
        # the mobile majority actually roams between cells
        report = _assert_identical(
            _config(
                mobile_fraction=0.6,
                num_slots=800,
                time_warp=2000.0,
                persistent=True,
            )
        )
        assert report.handoffs > 0  # the scenario actually couples cells

    def test_relaying_past_the_cell_edge(self):
        # sparse grid: cells don't overlap, tags between cells are out
        # of direct coverage and must relay through neighbours
        report = _assert_identical(
            _config(
                ap_spacing_m=40.0,
                num_tags=120,
                num_slots=1500,
                relay_range_m=6.0,
                relay_max_hops=4,
                hotspot_fraction=0.0,
                blockage_rate_hz=0.0,
            )
        )
        assert report.tags_read_relayed > 0  # relays actually fired

    def test_zero_delay_handoff_commits(self):
        _assert_identical(
            _config(handoff_delay_slots=0, mobile_fraction=0.6, time_warp=2000.0)
        )

    def test_commit_delay_longer_than_epoch(self):
        # trigger-to-commit signalling straddles an epoch boundary, so
        # the commit must be routed into a *later* shard payload
        _assert_identical(
            _config(
                handoff_delay_slots=75,
                epoch_slots=50,
                mobile_fraction=0.6,
                time_warp=2000.0,
            )
        )

    def test_reuse_factor_one(self):
        _assert_identical(_config(spatial_reuse_factor=1))

    def test_without_stop_when_drained(self):
        # epochs keep dispatching after the last tag is read; workers
        # return empty record batches the merge must tolerate
        _assert_identical(_config(stop_when_drained=False, num_slots=300))

    def test_zero_tags(self):
        _assert_identical(_config(num_tags=0, num_slots=100))

    def test_single_ap_grid(self):
        _assert_identical(_config(grid_rows=1, grid_cols=1), shards=2)

    def test_epoch_every_slot(self):
        _assert_identical(_config(epoch_slots=1, num_slots=120))

    def test_trace_dump_matches_serial(self, tmp_path):
        config = _config()
        serial_path = tmp_path / "serial.jsonl"
        sharded_path = tmp_path / "sharded.jsonl"
        run_multi_ap(config, seed=_SEED, trace_path=serial_path)
        run_multi_ap_sharded(
            config,
            seed=_SEED,
            shards=3,
            executor=_serial(),
            trace_path=sharded_path,
        )
        assert sharded_path.read_bytes() == serial_path.read_bytes()

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="shards"):
            run_multi_ap_sharded(_config(), shards=0)


#: Randomised scenario space: every draw toggles a different coupling
#: channel (mobility, hotspot load, commit delay, reuse colouring).
_scenarios = st.fixed_dictionaries(
    {
        "num_tags": st.integers(0, 30),
        "num_slots": st.sampled_from([90, 150, 240]),
        "epoch_slots": st.sampled_from([1, 7, 30, 50]),
        "mobile_fraction": st.sampled_from([0.0, 0.5]),
        "hotspot_fraction": st.sampled_from([0.0, 0.4]),
        "handoff_delay_slots": st.sampled_from([0, 8, 40]),
        "spatial_reuse_factor": st.sampled_from([1, 3]),
        "persistent": st.booleans(),
    }
)


class TestShardProperties:
    @settings(max_examples=12, deadline=None)
    @given(scenario=_scenarios, shards=st.integers(2, 9), seed=st.integers(0, 3))
    def test_any_partition_reproduces_the_serial_event_order(
        self, scenario, shards, seed
    ):
        """Digest equality across random configs/partitions proves the
        merged cross-shard stream pops in the exact serial
        ``(time, seq)`` order — the digest hashes every event."""
        config = _config(ap_spacing_m=6.0, time_warp=2000.0, **scenario)
        serial = run_multi_ap(config, seed=seed)
        sharded = run_multi_ap_sharded(
            config, seed=seed, shards=shards, executor=_serial()
        )
        assert sharded.trace_digest == serial.trace_digest
        assert pickle.dumps(sharded) == pickle.dumps(serial)

    @given(
        sizes=st.lists(st.integers(0, 500), min_size=1, max_size=24),
        n_shards=st.integers(1, 8),
    )
    def test_lpt_partition_is_total_and_deterministic(self, sizes, n_shards):
        owner = _assign_aps(sizes, n_shards)
        assert owner == _assign_aps(sizes, n_shards)  # pure function
        assert len(owner) == len(sizes)  # every AP owned exactly once
        assert all(0 <= s < n_shards for s in owner)
        if len(sizes) >= n_shards:
            assert set(owner) == set(range(n_shards))  # no idle shard


class TestExecutorStackIntegration:
    def test_process_pool_matches_serial_coordinator(self):
        config = _config(num_slots=250)
        pooled = run_multi_ap_sharded(
            config,
            seed=_SEED,
            shards=2,
            executor=SweepExecutor("process", max_workers=2),
        )
        serial = run_multi_ap(config, seed=_SEED)
        assert pickle.dumps(pooled) == pickle.dumps(serial)

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        config = _config(num_slots=300)
        serial = run_multi_ap(config, seed=_SEED)
        cold = run_multi_ap_sharded(
            config,
            seed=_SEED,
            shards=3,
            executor=_serial(),
            checkpoint_dir=tmp_path,
        )
        epochs = sorted(tmp_path.glob("shard_epoch_*.jsonl"))
        assert epochs  # one batched-fsync checkpoint file per epoch
        resumed = run_multi_ap_sharded(
            config,
            seed=_SEED,
            shards=3,
            executor=_serial(),
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert pickle.dumps(cold) == pickle.dumps(serial)
        assert pickle.dumps(resumed) == pickle.dumps(serial)

    def test_killed_shard_worker_recovers_bit_identically(self):
        """Chaos acceptance: hard-kill a shard worker mid-campaign; the
        pool degrades to the serial backend, the retry stack recomputes
        the shard-epoch, and the final report is still byte-identical.

        ``kill`` faults only fire inside pool workers (no-op in the
        owning process), so the process backend is load-bearing here.
        """
        config = _config(num_slots=250)
        faults = FaultPlan(specs=(FaultSpec("kill", 0, attempts=1),))
        survived = run_multi_ap_sharded(
            config,
            seed=_SEED,
            shards=2,
            executor=SweepExecutor("process", max_workers=2),
            faults=faults,
        )
        serial = run_multi_ap(config, seed=_SEED)
        assert pickle.dumps(survived) == pickle.dumps(serial)

    def test_shard_epoch_task_narrow_drops_foreign_payloads(self):
        # narrow() is what the pool submit path ships to workers: only
        # the target shard's payload survives the pickle
        task = ShardEpochTask(payloads=("a", "b", "c"))  # type: ignore[arg-type]
        narrowed = task.narrow(1.0)
        assert narrowed.payloads == (None, "b", None)
        with pytest.raises(AssertionError):
            narrowed.run(0.0, np.random.SeedSequence(0))


class TestMultiAPTaskSharding:
    def test_sweep_points_match_serial_engine(self):
        config = _config(num_slots=250)
        values = [10.0, 25.0]
        serial = _serial().run(values, MultiAPTask(config=config), seed=_SEED)
        sharded = _serial().run(
            values, MultiAPTask(config=config, shards=3), seed=_SEED
        )
        for a, b in zip(serial.points, sharded.points):
            assert pickle.dumps(a.metric) == pickle.dumps(b.metric)

    def test_cache_is_shared_between_engines(self, tmp_path):
        # byte-identical engines may share cache entries: warm the
        # cache with the serial engine, hit it with the sharded one
        config = _config(num_slots=250)
        values = [10.0, 25.0]
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor("serial", cache=cache).run(
            values, MultiAPTask(config=config), seed=_SEED
        )
        warm = SweepExecutor("serial", cache=cache).run(
            values, MultiAPTask(config=config, shards=3), seed=_SEED
        )
        assert warm.cache_hits == len(values)

    def test_rejects_negative_shards(self):
        with pytest.raises(ValueError, match="shards"):
            MultiAPTask(config=_config(), shards=-1)
