"""Tests for repro.rf.components."""

import numpy as np
import pytest

from repro.dsp.signal import Signal
from repro.rf.components import (
    LNA,
    EnvelopeDetector,
    Mixer,
    PowerAmplifier,
    RFSwitch,
    SwitchState,
)


class TestLNA:
    def test_gain_applied(self, rng):
        lna = LNA(gain_db=20.0, noise_figure_db=0.01, p1db_output_dbm=100.0)
        sig = Signal(np.full(1000, 1e-6), 1e6)
        out = lna.amplify(sig, rng)
        assert out.power() == pytest.approx(sig.power() * 100.0, rel=0.05)

    def test_noise_figure_adds_noise(self, rng):
        lna = LNA(gain_db=0.0, noise_figure_db=10.0, p1db_output_dbm=100.0)
        silent = Signal.zeros(100_000, 1e9)
        out = lna.amplify(silent, rng)
        from repro.rf.noise import thermal_noise_power

        expected = thermal_noise_power(1e9) * (10.0 - 1.0)
        assert out.power() == pytest.approx(expected, rel=0.05)

    def test_compression_limits_output(self, rng):
        lna = LNA(gain_db=30.0, noise_figure_db=3.0, p1db_output_dbm=0.0)
        big = Signal(np.full(100, 1.0), 1e6)  # +30 dBm in
        out = lna.amplify(big, rng)
        # output must saturate near the P1dB-implied ceiling, far below
        # the 60 dBm linear answer
        assert out.power() < 10 ** ((10.0 - 30.0) / 10.0)


class TestMixer:
    def test_self_coherent_downconversion_gives_dc(self):
        lo = Signal.tone(10e3, 1e6, 1e-3)
        mixer = Mixer(conversion_loss_db=0.0)
        out = mixer.downconvert(lo, lo)
        # rf * conj(lo) with rf == lo -> |lo|^2 = 1 (pure DC)
        assert np.allclose(out.samples, 1.0)

    def test_frequency_difference_appears(self):
        rf = Signal.tone(30e3, 1e6, 2e-3)
        lo = Signal.tone(10e3, 1e6, 2e-3)
        out = Mixer(conversion_loss_db=0.0).downconvert(rf, lo)
        phase = np.unwrap(np.angle(out.samples))
        freq = np.diff(phase) * 1e6 / (2 * np.pi)
        assert np.allclose(freq, 20e3)

    def test_conversion_loss(self):
        lo = Signal.tone(0.0, 1e6, 1e-4)
        out = Mixer(conversion_loss_db=6.0).downconvert(lo, lo)
        assert out.power() == pytest.approx(10 ** (-0.6), rel=1e-6)

    def test_rate_mismatch_raises(self):
        a = Signal.tone(0.0, 1e6, 1e-4)
        b = Signal.tone(0.0, 2e6, 1e-4)
        with pytest.raises(ValueError):
            Mixer().downconvert(a, b)

    def test_length_mismatch_truncates(self):
        a = Signal(np.ones(10), 1e6)
        b = Signal(np.ones(6), 1e6)
        assert Mixer().downconvert(a, b).num_samples == 6


class TestPowerAmplifier:
    def test_small_signal_gain(self):
        pa = PowerAmplifier(gain_db=30.0, psat_output_dbm=60.0)
        sig = Signal(np.full(10, 1e-4), 1e6)
        out = pa.amplify(sig)
        assert out.power() == pytest.approx(sig.power() * 1e3, rel=0.01)

    def test_saturation_bounds_output(self):
        pa = PowerAmplifier(gain_db=30.0, psat_output_dbm=27.0)
        sig = Signal(np.full(10, 1.0), 1e6)
        out = pa.amplify(sig)
        psat_w = 10 ** ((27.0 - 30.0) / 10.0)
        assert out.power() <= psat_w * 1.6  # Rapp A_sat slightly above P1dB


class TestEnvelopeDetector:
    def test_output_proportional_to_power(self):
        det = EnvelopeDetector(video_bandwidth_hz=1e9)
        sig = Signal(np.full(5000, 2.0), 1e7)
        out = det.detect(sig)
        assert out.samples[-1].real == pytest.approx(
            det.responsivity_v_per_w * 4.0, rel=0.01
        )

    def test_output_is_real(self):
        det = EnvelopeDetector()
        sig = Signal.tone(1e5, 1e7, 1e-4)
        out = det.detect(sig)
        assert np.allclose(out.samples.imag, 0.0)

    def test_video_bandwidth_smooths_fast_modulation(self):
        det = EnvelopeDetector(video_bandwidth_hz=1e5)
        # OOK at 5 MHz: detector too slow, output ripple is attenuated
        symbols = np.tile([1.0, 0.0], 500)
        sig = Signal.from_symbols(symbols, 5e6, 4)
        out = det.detect(sig)
        tail = out.samples.real[out.samples.size // 2 :]
        mean = np.mean(tail)
        assert np.std(tail) < 0.2 * mean


class TestSwitchState:
    def test_line_lookup(self):
        assert SwitchState.line(2) is SwitchState.LINE_2

    def test_line_rejects_terminated_index(self):
        with pytest.raises(ValueError):
            SwitchState.line(-1)

    def test_line_rejects_unknown(self):
        with pytest.raises(ValueError):
            SwitchState.line(9)


class TestRFSwitch:
    def test_bandwidth_from_rise_time(self):
        switch = RFSwitch(rise_time_s=1e-9)
        assert switch.bandwidth_hz == pytest.approx(350e6)

    def test_through_and_leakage_amplitudes(self):
        switch = RFSwitch(insertion_loss_db=2.0, isolation_db=40.0)
        assert switch.through_amplitude() == pytest.approx(10 ** (-0.1))
        assert switch.leakage_amplitude() == pytest.approx(10 ** (-2.0))

    def test_transition_bandwidth_noop_when_unresolvable(self):
        switch = RFSwitch(rise_time_s=1e-9)  # 350 MHz BW
        waveform = Signal(np.ones(100), 1e6)  # 1 MHz sampling
        out = switch.apply_transition_bandwidth(waveform)
        assert np.array_equal(out.samples, waveform.samples)

    def test_transition_bandwidth_smooths_when_slow(self):
        switch = RFSwitch(rise_time_s=1e-6)  # 350 kHz BW
        step = Signal(np.concatenate([np.zeros(50), np.ones(500)]), 1e8)
        out = switch.apply_transition_bandwidth(step)
        assert abs(out.samples[51]) < 0.5  # still rising

    def test_switching_power_scales_with_rate(self):
        switch = RFSwitch(energy_per_transition_j=4e-9)
        assert switch.switching_power_w(10e6) == pytest.approx(40e-3)
        assert switch.switching_power_w(0.0) == 0.0

    def test_switching_power_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            RFSwitch().switching_power_w(-1.0)
