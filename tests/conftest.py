"""Shared fixtures for the mmtag-repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.environment import Environment
from repro.core.ap import APConfig
from repro.core.link import LinkConfig
from repro.core.tag import TagConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for stochastic tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def fast_tag_config() -> TagConfig:
    """A small-oversampling tag config to keep waveform tests quick."""
    return TagConfig(symbol_rate_hz=10e6, samples_per_symbol=4)


@pytest.fixture
def quiet_link_config() -> LinkConfig:
    """A clean, noiseless, clutter-free link for deterministic checks."""
    return LinkConfig(
        distance_m=3.0,
        environment=Environment.anechoic(),
        include_noise=False,
        phase_noise=None,
    )


@pytest.fixture
def office_link_config() -> LinkConfig:
    """A realistic indoor operating point."""
    return LinkConfig(distance_m=4.0, environment=Environment.typical_office())


@pytest.fixture
def no_adc_ap_config() -> APConfig:
    """AP without quantization, for tests probing analog behaviour."""
    return APConfig(adc=None)
