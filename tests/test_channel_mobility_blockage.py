"""Tests for repro.channel.mobility and repro.channel.blockage."""

import numpy as np
import pytest

from repro.channel.blockage import BlockageEvent, apply_blockage
from repro.channel.mobility import LinearMotion, apply_doppler, doppler_shift_hz
from repro.constants import DEFAULT_CARRIER_HZ, DEFAULT_WAVELENGTH_M
from repro.dsp.signal import Signal


class TestDopplerShift:
    def test_double_doppler_formula(self):
        v = 1.0
        assert doppler_shift_hz(v) == pytest.approx(2.0 * v / DEFAULT_WAVELENGTH_M)

    def test_walking_speed_magnitude(self):
        # ~1 m/s at 24 GHz: about 161 Hz round trip
        assert doppler_shift_hz(1.0) == pytest.approx(160.9, rel=0.01)

    def test_sign_follows_velocity(self):
        assert doppler_shift_hz(-2.0) < 0 < doppler_shift_hz(2.0)

    def test_apply_doppler_shifts_tone(self):
        sig = Signal.tone(0.0, 1e6, 5e-3)
        out = apply_doppler(sig, radial_velocity_m_s=3.0)
        phase = np.unwrap(np.angle(out.samples))
        freq = np.diff(phase) * 1e6 / (2 * np.pi)
        assert np.median(freq) == pytest.approx(doppler_shift_hz(3.0), rel=1e-3)


class TestLinearMotion:
    def test_distance_at_time(self):
        motion = LinearMotion(start_distance_m=5.0, radial_velocity_m_s=-1.0)
        assert motion.distance_at(2.0) == pytest.approx(3.0)

    def test_rejects_reaching_ap(self):
        motion = LinearMotion(start_distance_m=1.0, radial_velocity_m_s=-1.0)
        with pytest.raises(ValueError):
            motion.distance_at(2.0)

    def test_rejects_non_positive_start(self):
        with pytest.raises(ValueError):
            LinearMotion(start_distance_m=0.0, radial_velocity_m_s=1.0)

    def test_closing_motion_positive_doppler(self):
        motion = LinearMotion(start_distance_m=5.0, radial_velocity_m_s=-2.0)
        assert motion.doppler_hz() > 0

    def test_receding_motion_negative_doppler(self):
        motion = LinearMotion(start_distance_m=5.0, radial_velocity_m_s=2.0)
        assert motion.doppler_hz(DEFAULT_CARRIER_HZ) < 0


class TestDopplerAtClosestApproach:
    """A tag walking a straight line past the AP (impact parameter b):
    Doppler is positive while closing, crosses zero exactly at closest
    approach, and goes negative while receding — the signature the
    deployment's mobility instrumentation relies on."""

    def _flyby_velocity(self, t, speed=1.0, b=2.0):
        # distance d(t) = hypot(speed * t, b); closest approach at t = 0
        import math

        return speed * speed * t / math.hypot(speed * t, b)

    def test_sign_flips_exactly_at_closest_approach(self):
        before = self._flyby_velocity(-3.0)  # closing: d shrinking
        at = self._flyby_velocity(0.0)
        after = self._flyby_velocity(3.0)  # receding: d growing
        assert before < 0 < after
        assert at == 0.0
        # positive radial velocity = receding = negative Doppler
        assert doppler_shift_hz(-before) > 0
        assert doppler_shift_hz(-at) == 0.0
        assert doppler_shift_hz(-after) < 0

    def test_magnitude_dips_to_zero_at_the_pass(self):
        times = np.linspace(-4.0, 4.0, 41)
        shifts = [
            abs(doppler_shift_hz(-self._flyby_velocity(float(t))))
            for t in times
        ]
        assert int(np.argmin(shifts)) == 20  # the t = 0 sample
        assert shifts[0] > shifts[10] > shifts[20]

    def test_waypoint_trace_doppler_flips_across_a_pass(self):
        """Same physics through the trace API: a manual straight-line
        trace past the origin shows the backward-difference radial
        velocity changing sign across closest approach."""
        from repro.channel.waypoint import RandomWaypointModel, TracePoint

        model = RandomWaypointModel()
        trace = [
            TracePoint(time_s=float(k), x_m=2.0, y_m=float(k - 4))
            for k in range(9)
        ]
        v_before = model.radial_velocity_at(trace, 2)  # y: -2 -> -1
        v_after = model.radial_velocity_at(trace, 7)  # y: 2 -> 3
        assert v_before < 0 < v_after
        assert doppler_shift_hz(-v_before) > 0 > doppler_shift_hz(-v_after)
        # the two samples straddling the pass are symmetric: equal
        # magnitude, opposite sign
        v_in = model.radial_velocity_at(trace, 4)  # y: -1 -> 0
        v_out = model.radial_velocity_at(trace, 5)  # y: 0 -> 1
        assert v_in == pytest.approx(-v_out)


class TestBlockageEvent:
    def test_rejects_reversed_window(self):
        with pytest.raises(ValueError):
            BlockageEvent(start_s=1.0, stop_s=0.5, attenuation_db=10.0)

    def test_rejects_negative_attenuation(self):
        with pytest.raises(ValueError):
            BlockageEvent(start_s=0.0, stop_s=1.0, attenuation_db=-3.0)

    def test_roundtrip_factor_doubles_the_db(self):
        event = BlockageEvent(0.0, 1.0, attenuation_db=10.0)
        assert event.roundtrip_amplitude_factor == pytest.approx(0.1)


class TestApplyBlockage:
    def test_attenuates_only_inside_window(self):
        sig = Signal(np.ones(100), 1e3)  # 100 ms
        event = BlockageEvent(start_s=0.02, stop_s=0.05, attenuation_db=20.0)
        out = apply_blockage(sig, [event])
        assert np.allclose(out.samples[:20], 1.0)
        assert np.allclose(out.samples[20:50], 1e-2)
        assert np.allclose(out.samples[50:], 1.0)

    def test_overlapping_events_multiply(self):
        sig = Signal(np.ones(10), 1e3)
        events = [
            BlockageEvent(0.0, 0.01, attenuation_db=10.0),
            BlockageEvent(0.0, 0.01, attenuation_db=10.0),
        ]
        out = apply_blockage(sig, events)
        assert np.allclose(out.samples, 1e-2)

    def test_no_events_is_identity(self):
        sig = Signal(np.ones(10), 1e3)
        out = apply_blockage(sig, [])
        assert np.allclose(out.samples, sig.samples)
