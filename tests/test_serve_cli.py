"""``repro serve``: CLI surface and signal-driven shutdown edges.

In-process tests cover the argument surface (validation exit codes,
replay output, the experiments row); the subprocess tests cover what
only a real process can: SIGINT mid-burst leaves a *loadable*
checkpoint and zero torn dead-letter lines, and a second SIGINT
force-exits with status 130.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.net.sim import NetSimConfig, run_netsim
from repro.serve.inventory import LiveInventory

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("servecli") / "trace.jsonl"
    config = NetSimConfig(
        num_tags=25, num_slots=2500, protocol="aloha", trace_capacity=8192
    )
    run_netsim(config, seed=2, trace_path=path)
    return path


class TestServeArguments:
    def test_replay_prints_summary(self, trace_path, capsys):
        code = main(["serve", "--trace", str(trace_path), "--rate", "0",
                     "--status-interval", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=replay" in out
        assert "state sha256" in out

    def test_replay_is_deterministic_text(self, trace_path, capsys):
        argv = ["serve", "--trace", str(trace_path), "--rate", "0",
                "--status-interval", "60"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_duration_zero_exit_two(self, trace_path, capsys):
        code = main(["serve", "--trace", str(trace_path), "--duration", "0"])
        assert code == 2
        assert "duration" in capsys.readouterr().err

    def test_source_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2

    def test_trace_and_live_exclusive(self, trace_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--trace", str(trace_path), "--live"])
        assert excinfo.value.code == 2

    def test_chaos_requires_duration(self, trace_path, capsys):
        code = main(["serve", "--trace", str(trace_path), "--chaos", "1"])
        assert code == 2
        assert "--duration" in capsys.readouterr().err

    def test_bad_queue_depth_exit_two(self, trace_path, capsys):
        code = main(["serve", "--trace", str(trace_path),
                     "--queue-depth", "0"])
        assert code == 2

    def test_missing_trace_exit_two(self, tmp_path, capsys):
        code = main(["serve", "--trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "no trace dump" in capsys.readouterr().err

    def test_experiments_lists_e23(self, capsys):
        main(["experiments"])
        assert "E23" in capsys.readouterr().out

    def test_log_level_flag_accepted(self, trace_path, capsys):
        code = main(["--log-level", "WARNING", "serve", "--trace",
                     str(trace_path), "--rate", "0",
                     "--status-interval", "60"])
        assert code == 0


def _spawn_serve(tmp_path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--live",
            "--offered-rate", "2000", "--rate", "500",
            "--queue-depth", "64", "--status-interval", "0.2",
            "--checkpoint", str(tmp_path / "inv.ckpt"),
            "--dead-letter", str(tmp_path / "dlq.jsonl"),
            "--chaos", "3", "--duration", "30",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_status(proc: subprocess.Popen, timeout_s: float = 30.0) -> str:
    """Read stdout until the first periodic status line appears."""
    seen: list[str] = []
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        seen.append(line)
        if line.startswith("[serve "):
            return "".join(seen)
    raise AssertionError(
        f"daemon produced no status line:\n{''.join(seen)}"
    )


class TestSignalShutdown:
    def test_sigint_mid_burst_drains_and_checkpoints(self, tmp_path):
        proc = _spawn_serve(tmp_path)
        try:
            _wait_for_status(proc)
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0, out
        assert "mode=live" in out
        assert "drained=True" in out
        # Checkpoint must load and verify.
        state = LiveInventory.load_checkpoint(tmp_path / "inv.ckpt")
        assert state["total_reads"] > 0
        # Every dead-letter line must be complete JSON (no torn writes).
        dlq = tmp_path / "dlq.jsonl"
        if dlq.exists():
            for line in dlq.read_text().splitlines():
                json.loads(line)

    def test_double_sigint_force_exits_130(self, tmp_path):
        # The second signal must win even though the drain itself is
        # fast: rapid-fire SIGINTs until the process dies, so one is
        # guaranteed to land after the first was processed (CPython
        # coalesces signals delivered before the handler runs, so a
        # single precisely-timed second signal would be racy).
        for attempt in range(3):
            proc = _spawn_serve(tmp_path)
            try:
                _wait_for_status(proc)
                proc.send_signal(signal.SIGINT)
                while proc.poll() is None:
                    time.sleep(0.002)
                    try:
                        proc.send_signal(signal.SIGINT)
                    except ProcessLookupError:
                        break
                out, _ = proc.communicate(timeout=60)
            finally:
                proc.kill()
            if proc.returncode == 130:
                return
        raise AssertionError(
            f"never saw force-exit 130; last run exited "
            f"{proc.returncode}:\n{out}"
        )

    def test_sigterm_equivalent_to_sigint(self, tmp_path):
        proc = _spawn_serve(tmp_path)
        try:
            _wait_for_status(proc)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0, out
        assert "drained=True" in out
