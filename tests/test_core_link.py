"""Tests for repro.core.link — the end-to-end chain."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.channel.blockage import BlockageEvent
from repro.channel.environment import Environment
from repro.core.link import LinkConfig, link_snr_db, simulate_link
from repro.core.tag import TagConfig
from repro.em.vanatta import VanAttaArray


class TestLinkConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"distance_m": 0.0},
            {"incidence_angle_deg": 90.0},
            {"incidence_angle_deg": -95.0},
            {"implementation_loss_db": -1.0},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)

    def test_with_distance(self):
        assert LinkConfig(distance_m=3.0).with_distance(7.0).distance_m == 7.0

    def test_with_modulation(self):
        assert LinkConfig().with_modulation("ook").tag.modulation == "OOK"


class TestAnalyticSnr:
    def test_d4_slope(self):
        near = link_snr_db(LinkConfig(distance_m=2.0))
        far = link_snr_db(LinkConfig(distance_m=4.0))
        assert near - far == pytest.approx(40.0 * math.log10(2.0), abs=1e-9)

    def test_ook_3db_below_psk(self):
        psk = link_snr_db(LinkConfig().with_modulation("QPSK"))
        ook = link_snr_db(LinkConfig().with_modulation("OOK"))
        assert psk - ook == pytest.approx(3.01, abs=0.01)

    def test_more_pairs_more_snr(self):
        small = LinkConfig(tag=TagConfig(array=VanAttaArray(num_pairs=2)))
        large = LinkConfig(tag=TagConfig(array=VanAttaArray(num_pairs=8)))
        # doubling elements twice: +12 dB on the round trip... (N^2)
        assert link_snr_db(large) - link_snr_db(small) == pytest.approx(
            40.0 * math.log10(2.0), abs=0.01
        )

    def test_higher_symbol_rate_lower_snr(self):
        slow = LinkConfig(tag=TagConfig(symbol_rate_hz=10e6))
        fast = LinkConfig(tag=TagConfig(symbol_rate_hz=40e6))
        assert link_snr_db(slow) - link_snr_db(fast) == pytest.approx(6.02, abs=0.01)

    def test_off_axis_snr_drops(self):
        assert link_snr_db(LinkConfig(incidence_angle_deg=45.0)) < link_snr_db(
            LinkConfig(incidence_angle_deg=0.0)
        )


class TestSimulateLink:
    def test_clean_link_delivers_frame(self, office_link_config):
        result = simulate_link(office_link_config, num_payload_bits=512, rng=0)
        assert result.frame_success
        assert result.ber == 0.0
        assert result.detected

    def test_measured_snr_matches_analytic(self, office_link_config):
        result = simulate_link(office_link_config, num_payload_bits=2048, rng=1)
        assert result.snr_measured_db == pytest.approx(
            result.snr_analytic_db, abs=1.5
        )

    def test_deterministic_given_seed(self, office_link_config):
        a = simulate_link(office_link_config, num_payload_bits=256, rng=42)
        b = simulate_link(office_link_config, num_payload_bits=256, rng=42)
        assert a.ber == b.ber
        assert a.snr_measured_db == b.snr_measured_db

    def test_explicit_payload_used(self, quiet_link_config):
        payload = np.ones(128, dtype=np.int8)
        result = simulate_link(quiet_link_config, payload_bits=payload, rng=0)
        assert result.frame_success
        assert np.array_equal(result.receiver.payload_bits[:128], payload)

    def test_far_link_fails(self):
        config = LinkConfig(distance_m=60.0)
        result = simulate_link(config, num_payload_bits=256, rng=0)
        assert not result.frame_success
        assert result.ber > 0.05

    def test_ber_saturates_at_half_when_lost(self):
        config = LinkConfig(distance_m=200.0)
        result = simulate_link(config, num_payload_bits=256, rng=0)
        assert result.ber == pytest.approx(0.5, abs=0.05)

    def test_energy_report_attached(self, office_link_config):
        result = simulate_link(office_link_config, num_payload_bits=128, rng=0)
        assert result.energy.energy_per_bit_nj == pytest.approx(2.4, rel=1e-6)

    @pytest.mark.parametrize("modulation", ["OOK", "BPSK", "QPSK", "8PSK", "16QAM"])
    def test_all_modulations_work_at_close_range(self, modulation):
        config = LinkConfig(distance_m=2.0).with_modulation(modulation)
        result = simulate_link(config, num_payload_bits=240, rng=3)
        assert result.frame_success, modulation


class TestImpairments:
    def test_blockage_kills_midburst_frame(self, office_link_config):
        config = replace(
            office_link_config,
            blockage_events=(BlockageEvent(0.0, 1.0, attenuation_db=30.0),),
        )
        result = simulate_link(config, num_payload_bits=512, rng=0)
        assert not result.frame_success

    def test_mild_blockage_survivable(self, office_link_config):
        config = replace(
            office_link_config,
            distance_m=2.0,
            blockage_events=(BlockageEvent(0.0, 1.0, attenuation_db=3.0),),
        )
        result = simulate_link(config, num_payload_bits=512, rng=0)
        assert result.frame_success

    def test_strong_multipath_degrades_snr(self, office_link_config):
        los = simulate_link(office_link_config, num_payload_bits=2048, rng=5)
        nlos_cfg = replace(office_link_config, rician_k_db=0.0, num_nlos_paths=6)
        nlos_runs = [
            simulate_link(nlos_cfg, num_payload_bits=2048, rng=s).snr_measured_db
            for s in range(5)
        ]
        usable = [s for s in nlos_runs if s is not None]
        assert usable, "all NLOS runs lost sync"
        assert np.mean(usable) < los.snr_measured_db

    def test_doppler_tolerated_at_walking_speed(self, office_link_config):
        config = replace(office_link_config, radial_velocity_m_s=-1.5)
        result = simulate_link(config, num_payload_bits=512, rng=2)
        assert result.frame_success

    def test_noise_free_has_zero_ber(self, quiet_link_config):
        result = simulate_link(quiet_link_config, num_payload_bits=512, rng=0)
        assert result.ber == 0.0
        assert result.snr_measured_db > 40


class TestEnvironmentInteraction:
    def test_office_clutter_small_penalty(self):
        quiet = LinkConfig(distance_m=4.0, environment=Environment.anechoic())
        office = LinkConfig(distance_m=4.0, environment=Environment.typical_office())
        snr_quiet = simulate_link(quiet, num_payload_bits=2048, rng=9).snr_measured_db
        snr_office = simulate_link(office, num_payload_bits=2048, rng=9).snr_measured_db
        assert snr_office > snr_quiet - 3.0

    def test_poor_isolation_still_works_with_dc_block(self):
        harsh = Environment(tx_rx_isolation_db=20.0)
        config = LinkConfig(distance_m=3.0, environment=harsh)
        result = simulate_link(config, num_payload_bits=512, rng=4)
        assert result.frame_success
