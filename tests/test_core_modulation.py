"""Tests for repro.core.modulation."""

import math

import numpy as np
import pytest

from repro.core.modulation import (
    BPSK,
    OOK,
    PSK8,
    QAM16,
    QPSK,
    Constellation,
    TagState,
    available_schemes,
    get_scheme,
)

ALL_SCHEMES = [OOK, BPSK, QPSK, PSK8, QAM16]


class TestTagState:
    def test_terminated_state_zero_reflection(self):
        state = TagState(None, 0.0)
        assert state.reflection == 0.0
        assert state.is_absorptive

    def test_line_state_reflection(self):
        state = TagState(math.pi / 2, 1.0)
        assert state.reflection == pytest.approx(1j)

    def test_partial_amplitude(self):
        state = TagState(0.0, 0.5)
        assert state.reflection == pytest.approx(0.5)

    def test_rejects_amplitude_out_of_range(self):
        with pytest.raises(ValueError):
            TagState(0.0, 1.5)


class TestConstellationValidation:
    def test_rejects_non_power_of_two(self):
        points = np.array([1.0, -1.0, 1j])
        labels = np.array([[0, 0], [0, 1], [1, 0]])
        with pytest.raises(ValueError):
            Constellation(points, labels)

    def test_rejects_duplicate_labels(self):
        points = np.array([1.0, -1.0])
        labels = np.array([[0], [0]])
        with pytest.raises(ValueError):
            Constellation(points, labels)

    def test_rejects_wrong_label_width(self):
        points = np.array([1.0, -1.0])
        labels = np.array([[0, 0], [0, 1]])
        with pytest.raises(ValueError):
            Constellation(points, labels)


class TestModulateDemodulate:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_round_trip_is_exact(self, scheme, rng):
        k = scheme.bits_per_symbol
        bits = rng.integers(0, 2, size=120 * k).astype(np.int8)
        symbols = scheme.constellation.modulate(bits)
        assert np.array_equal(scheme.constellation.demodulate(symbols), bits)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_round_trip_with_small_noise(self, scheme, rng):
        k = scheme.bits_per_symbol
        bits = rng.integers(0, 2, size=120 * k).astype(np.int8)
        symbols = scheme.constellation.modulate(bits)
        jitter = 0.01 * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        assert np.array_equal(scheme.constellation.demodulate(symbols + jitter), bits)

    def test_modulate_rejects_partial_symbol(self):
        with pytest.raises(ValueError):
            QPSK.constellation.modulate(np.array([0, 1, 0], dtype=np.int8))

    def test_symbol_indices_match_modulate(self, rng):
        bits = rng.integers(0, 2, size=60).astype(np.int8)
        indices = QPSK.constellation.symbol_indices(bits)
        symbols = QPSK.constellation.modulate(bits)
        assert np.array_equal(QPSK.constellation.points[indices], symbols)


class TestGrayCoding:
    @pytest.mark.parametrize("scheme", [BPSK, QPSK, PSK8], ids=lambda s: s.name)
    def test_adjacent_psk_points_differ_in_one_bit(self, scheme):
        m = scheme.constellation.size
        labels = scheme.constellation.bit_labels
        for i in range(m):
            j = (i + 1) % m
            assert int(np.sum(labels[i] != labels[j])) == 1


class TestSchemeProperties:
    def test_registry_contains_all(self):
        assert set(available_schemes()) == {"OOK", "BPSK", "QPSK", "8PSK", "16QAM"}

    def test_get_scheme_case_insensitive(self):
        assert get_scheme("qpsk") is QPSK

    def test_get_scheme_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scheme("64QAM")

    @pytest.mark.parametrize(
        "scheme,k", [(OOK, 1), (BPSK, 1), (QPSK, 2), (PSK8, 3), (QAM16, 4)],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_bits_per_symbol(self, scheme, k):
        assert scheme.bits_per_symbol == k

    def test_ook_modulation_loss_3db(self):
        assert OOK.modulation_loss_db() == pytest.approx(3.01, abs=0.01)

    @pytest.mark.parametrize("scheme", [BPSK, QPSK, PSK8], ids=lambda s: s.name)
    def test_psk_has_no_modulation_loss(self, scheme):
        assert scheme.modulation_loss_db() == pytest.approx(0.0, abs=1e-9)

    def test_qam16_modulation_loss_positive(self):
        assert 0.0 < QAM16.modulation_loss_db() < 3.5

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_states_are_passive(self, scheme):
        for state in scheme.states:
            assert abs(state.reflection) <= 1.0 + 1e-12

    def test_num_lines(self):
        assert OOK.num_lines == 1
        assert BPSK.num_lines == 2
        assert QPSK.num_lines == 4
        assert PSK8.num_lines == 8
        assert QAM16.num_lines == 16

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_average_transitions(self, scheme):
        m = scheme.constellation.size
        assert scheme.average_transitions_per_symbol() == pytest.approx(1 - 1 / m)


class TestTheoreticalBer:
    def test_bpsk_known_point(self):
        # BPSK at 9.6 dB Eb/N0 -> ~1e-5 BER
        assert BPSK.theoretical_ber(9.6) == pytest.approx(1e-5, rel=0.3)

    def test_qpsk_equals_bpsk_per_bit(self):
        # At equal Eb/N0 (QPSK Es = 2 Eb) QPSK and BPSK have equal BER.
        eb_n0_db = 8.0
        assert QPSK.theoretical_ber(eb_n0_db + 3.01) == pytest.approx(
            BPSK.theoretical_ber(eb_n0_db), rel=0.01
        )

    def test_ook_3db_worse_than_bpsk(self):
        # Equal BER requires ~3 dB more average SNR for OOK.
        snr = 10.0
        assert OOK.theoretical_ber(snr + 3.01) == pytest.approx(
            BPSK.theoretical_ber(snr), rel=0.05
        )

    def test_ordering_denser_is_worse(self):
        snr = 12.0
        bers = [s.theoretical_ber(snr) for s in (BPSK, QPSK, PSK8, QAM16)]
        assert bers[0] <= bers[1] <= bers[2] <= bers[3]

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_monotone_decreasing_in_snr(self, scheme):
        bers = [scheme.theoretical_ber(snr) for snr in range(-5, 30, 5)]
        assert all(a >= b for a, b in zip(bers, bers[1:]))

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_bounded_by_half(self, scheme):
        assert scheme.theoretical_ber(-20.0) <= 0.5

    def test_union_bound_close_to_exact_for_qpsk_high_snr(self):
        snr = 14.0
        exact = QPSK.theoretical_ber(snr)
        bound = QPSK.constellation.union_bound_ber(snr)
        assert bound >= exact * 0.99
        assert bound < exact * 3.0


class TestPhysicalConsistency:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_states_realise_constellation(self, scheme):
        for state, point in zip(scheme.states, scheme.constellation.points):
            assert state.reflection == pytest.approx(point, abs=1e-12)

    def test_ook_off_state_is_terminated(self):
        off_index = int(np.argmin(np.abs(OOK.constellation.points)))
        assert OOK.states[off_index].is_absorptive
