"""Tests for repro.em.vanatta — the tag's retro-reflective array."""

import math

import numpy as np
import pytest

from repro.em.antenna import isotropic_element, patch_element
from repro.em.vanatta import VanAttaArray


class TestGeometry:
    def test_element_count(self):
        assert VanAttaArray(num_pairs=4).num_elements == 8

    def test_positions_centred(self):
        array = VanAttaArray(num_pairs=2)
        positions = array.element_positions()
        assert np.sum(positions) == pytest.approx(0.0, abs=1e-12)

    def test_partner_is_mirror(self):
        array = VanAttaArray(num_pairs=3)
        for n in range(6):
            assert array.partner_index(n) == 5 - n
            # pairing is symmetric
            assert array.partner_index(array.partner_index(n)) == n

    def test_partner_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            VanAttaArray(num_pairs=2).partner_index(4)

    @pytest.mark.parametrize("kwargs", [
        {"num_pairs": 0},
        {"spacing_m": 0.0},
        {"line_loss_db": -1.0},
        {"line_phase_errors_rad": (0.1,)},  # wrong length for 4 pairs
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            VanAttaArray(**kwargs)


class TestRetroReflection:
    def test_broadside_gain_matches_theory(self):
        # Lossless array: monostatic gain = (N_elem * G_elem)^2
        array = VanAttaArray(num_pairs=4, element=patch_element(5.0), line_loss_db=0.0)
        expected = (8 * 10 ** 0.5) ** 2
        assert array.monostatic_gain(0.0) == pytest.approx(expected, rel=1e-9)

    def test_retro_gain_flat_over_wide_angles_with_isotropic_elements(self):
        # The defining Van Atta property: with no element roll-off the
        # retro-reflected gain is angle-independent.
        array = VanAttaArray(num_pairs=4, element=isotropic_element(), line_loss_db=0.0)
        gains = array.retro_pattern(np.radians(np.linspace(-60, 60, 13)))
        assert np.max(gains) / np.min(gains) == pytest.approx(1.0, rel=1e-9)

    def test_retro_gain_follows_element_pattern_squared(self):
        array = VanAttaArray(num_pairs=4, element=patch_element(5.0), line_loss_db=0.0)
        theta = math.radians(30.0)
        ratio = array.monostatic_gain(theta) / array.monostatic_gain(0.0)
        element_ratio = float(
            patch_element(5.0).gain(theta) / patch_element(5.0).gain(0.0)
        )
        assert ratio == pytest.approx(element_ratio**2, rel=1e-9)

    def test_line_loss_reduces_gain(self):
        lossless = VanAttaArray(num_pairs=4, line_loss_db=0.0)
        lossy = VanAttaArray(num_pairs=4, line_loss_db=2.0)
        delta_db = lossless.monostatic_gain_db(0.0) - lossy.monostatic_gain_db(0.0)
        assert delta_db == pytest.approx(2.0, abs=1e-9)

    def test_gain_scales_with_pair_count_squared(self):
        g2 = VanAttaArray(num_pairs=2, line_loss_db=0.0).monostatic_gain(0.0)
        g4 = VanAttaArray(num_pairs=4, line_loss_db=0.0).monostatic_gain(0.0)
        assert g4 / g2 == pytest.approx(4.0, rel=1e-9)

    def test_bistatic_off_retro_direction_is_weaker(self):
        array = VanAttaArray(num_pairs=4, element=isotropic_element())
        theta_in = math.radians(20.0)
        retro = abs(array.bistatic_field(theta_in, theta_in)) ** 2
        away = abs(array.bistatic_field(theta_in, math.radians(-40.0))) ** 2
        assert retro > 5 * away


class TestModulation:
    def test_line_phase_rotates_reflection(self):
        array = VanAttaArray(num_pairs=4, line_loss_db=0.0)
        base = array.monostatic_field(0.1, line_phase_rad=0.0)
        rotated = array.monostatic_field(0.1, line_phase_rad=math.pi / 2)
        assert rotated / base == pytest.approx(1j, rel=1e-9)

    def test_reflection_coefficient_terminated_is_zero(self):
        array = VanAttaArray()
        assert array.reflection_coefficient(0.0, None) == 0.0

    def test_reflection_coefficient_magnitude_is_line_loss(self):
        array = VanAttaArray(num_pairs=4, line_loss_db=1.0)
        gamma = array.reflection_coefficient(0.0, 0.0)
        assert abs(gamma) == pytest.approx(10 ** (-1.0 / 20.0), rel=1e-9)

    def test_reflection_coefficient_angle_invariant_for_ideal_array(self):
        array = VanAttaArray(num_pairs=4, line_loss_db=1.0)
        g0 = array.reflection_coefficient(0.0, math.pi / 4)
        g30 = array.reflection_coefficient(math.radians(30.0), math.pi / 4)
        assert g30 == pytest.approx(g0, rel=1e-9)

    def test_phase_errors_reduce_coherence(self):
        rng = np.random.default_rng(3)
        errors = tuple(rng.normal(0.0, 0.5, size=4))
        clean = VanAttaArray(num_pairs=4, line_loss_db=0.0)
        dirty = VanAttaArray(num_pairs=4, line_loss_db=0.0, line_phase_errors_rad=errors)
        assert dirty.monostatic_gain(0.0) < clean.monostatic_gain(0.0)

    def test_passivity_reflection_never_amplifies(self):
        # |Gamma| <= 1 for every state and angle - energy conservation.
        rng = np.random.default_rng(9)
        errors = tuple(rng.normal(0.0, 0.3, size=4))
        array = VanAttaArray(num_pairs=4, line_loss_db=0.5, line_phase_errors_rad=errors)
        for theta_deg in (-50, -20, 0, 15, 45):
            for phase in (0.0, math.pi / 2, math.pi, 3 * math.pi / 2):
                gamma = array.reflection_coefficient(math.radians(theta_deg), phase)
                assert abs(gamma) <= 1.0 + 1e-9
