"""Tests for repro.core.convolutional."""

import math

import numpy as np
import pytest

from repro.core.convolutional import K7_CODE, ConvolutionalCode

SMALL_CODE = ConvolutionalCode(constraint_length=3, polynomials=(0o7, 0o5))


class TestConstruction:
    def test_k7_properties(self):
        assert K7_CODE.rate_inverse == 2
        assert K7_CODE.num_states == 64

    def test_rejects_short_constraint(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=1, polynomials=(0o3, 0o1))

    def test_rejects_single_polynomial(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, polynomials=(0o7,))

    def test_rejects_oversized_polynomial(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, polynomials=(0o7, 0o17))


class TestEncoding:
    def test_output_length_terminated(self):
        bits = np.zeros(10, dtype=np.int8)
        assert K7_CODE.encode(bits).size == (10 + 6) * 2

    def test_all_zero_message_all_zero_code(self):
        coded = SMALL_CODE.encode(np.zeros(8, dtype=np.int8))
        assert not np.any(coded)

    def test_linearity(self, rng):
        a = rng.integers(0, 2, 16).astype(np.int8)
        b = rng.integers(0, 2, 16).astype(np.int8)
        assert np.array_equal(
            SMALL_CODE.encode(a) ^ SMALL_CODE.encode(b), SMALL_CODE.encode(a ^ b)
        )

    def test_known_small_code_vector(self):
        # (7,5) code, input 1 0 0: impulse response 11 10 11 (+ tail zeros)
        coded = SMALL_CODE.encode(np.array([1, 0, 0], dtype=np.int8))
        assert list(coded[:6]) == [1, 1, 1, 0, 1, 1]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            K7_CODE.encode(np.array([0, 2], dtype=np.int8))


class TestHardDecoding:
    def test_clean_round_trip(self, rng):
        bits = rng.integers(0, 2, 120).astype(np.int8)
        assert np.array_equal(K7_CODE.decode_hard(K7_CODE.encode(bits)), bits)

    def test_corrects_scattered_errors(self, rng):
        bits = rng.integers(0, 2, 200).astype(np.int8)
        coded = K7_CODE.encode(bits)
        corrupted = coded.copy()
        positions = rng.choice(coded.size, size=10, replace=False)
        corrupted[positions] ^= 1
        assert np.array_equal(K7_CODE.decode_hard(corrupted), bits)

    def test_dense_burst_defeats_it(self, rng):
        bits = rng.integers(0, 2, 60).astype(np.int8)
        coded = K7_CODE.encode(bits)
        corrupted = coded.copy()
        corrupted[20:45] ^= 1  # 25 consecutive flips: beyond free distance
        assert not np.array_equal(K7_CODE.decode_hard(corrupted), bits)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            K7_CODE.decode_hard(np.zeros(7, dtype=np.int8))

    def test_rejects_too_short_stream(self):
        with pytest.raises(ValueError):
            K7_CODE.decode_hard(np.zeros(8, dtype=np.int8))


class TestSoftDecoding:
    def _awgn_ber(self, snr_db, soft, n=20_000, seed=3):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n).astype(np.int8)
        coded = K7_CODE.encode(bits)
        tx = 1.0 - 2.0 * coded.astype(np.float64)
        sigma = math.sqrt(1.0 / (2 * 10 ** (snr_db / 10)))
        rx = tx + rng.normal(0.0, sigma, tx.size)
        if soft:
            decoded = K7_CODE.decode_soft(rx)
        else:
            decoded = K7_CODE.decode_hard((rx < 0).astype(np.int8))
        return float(np.mean(decoded != bits))

    # No longer ``slow``-marked: the vectorized Viterbi backend decodes
    # these long chains ~25x faster than the original nested-loop pass.
    def test_soft_beats_hard(self):
        snr_db = -1.0
        assert self._awgn_ber(snr_db, soft=True) < self._awgn_ber(snr_db, soft=False) / 5

    def test_coding_gain_over_uncoded(self):
        # at 0 dB per coded bit (=3 dB Eb/N0), uncoded BPSK ~ 2.3e-2;
        # the K7 code gets far below that
        coded_ber = self._awgn_ber(0.0, soft=True, n=40_000)
        from repro.dsp.measure import q_function

        uncoded = float(q_function(math.sqrt(2 * 10 ** (3.0 / 10))))
        assert coded_ber < uncoded / 10

    def test_soft_sign_convention(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int8)
        coded = K7_CODE.encode(bits)
        soft = (1.0 - 2.0 * coded) * 3.7  # arbitrary positive scale
        assert np.array_equal(K7_CODE.decode_soft(soft), bits)


class TestWithSoftDemapper:
    def test_llr_chain_round_trip(self, rng):
        """Constellation LLRs feed the decoder directly."""
        from repro.core.modulation import QPSK

        bits = rng.integers(0, 2, 120).astype(np.int8)
        coded = K7_CODE.encode(bits)
        symbols = QPSK.constellation.modulate(coded)
        noise_var = 0.4
        noisy = symbols + math.sqrt(noise_var / 2) * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        llrs = QPSK.constellation.soft_bits(noisy, noise_var)
        decoded = K7_CODE.decode_soft(llrs)
        assert np.array_equal(decoded, bits)
