"""Tests for repro.dsp.equalizer."""

import numpy as np
import pytest

from repro.dsp.equalizer import LmsEqualizer, zero_forcing_taps


def _isi_channel(symbols: np.ndarray, channel: np.ndarray) -> np.ndarray:
    return np.convolve(symbols, channel)[: symbols.size]


class TestZeroForcing:
    def test_identity_channel_identity_equalizer(self):
        taps = zero_forcing_taps(np.array([1.0]), num_taps=5)
        combined = np.convolve(np.array([1.0]), taps)
        peak = np.argmax(np.abs(combined))
        assert abs(combined[peak]) == pytest.approx(1.0, rel=1e-6)

    def test_opens_a_closed_channel(self):
        channel = np.array([1.0, 0.6])
        taps = zero_forcing_taps(channel, num_taps=15)
        combined = np.convolve(channel, taps)
        peak = int(np.argmax(np.abs(combined)))
        sidelobes = np.delete(np.abs(combined), peak)
        assert abs(combined[peak]) == pytest.approx(1.0, rel=0.05)
        assert np.max(sidelobes) < 0.1

    def test_complex_channel(self):
        channel = np.array([1.0, 0.4j, -0.2])
        taps = zero_forcing_taps(channel, num_taps=21)
        combined = np.convolve(channel, taps)
        peak = int(np.argmax(np.abs(combined)))
        assert abs(combined[peak]) > 0.95

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zero_forcing_taps(np.zeros(0), 5)
        with pytest.raises(ValueError):
            zero_forcing_taps(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            zero_forcing_taps(np.array([1.0]), 5, delay=99)


class TestLmsEqualizer:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            LmsEqualizer(num_taps=0)
        with pytest.raises(ValueError):
            LmsEqualizer(step_size=0.0)

    def test_initial_state_is_passthrough(self, rng):
        eq = LmsEqualizer(num_taps=5)
        symbols = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        assert np.allclose(eq.apply(symbols), symbols)

    def test_learns_gain_and_phase(self, rng):
        reference = (2 * rng.integers(0, 2, 64) - 1).astype(complex)
        received = 0.5 * np.exp(1j * 1.1) * reference
        eq = LmsEqualizer(num_taps=5, step_size=0.1)
        mse = eq.train(received, reference, passes=10)
        assert mse < 1e-2
        out = eq.apply(received)
        assert np.allclose(out[2:-2], reference[2:-2], atol=0.15)

    def test_opens_isi_channel(self, rng):
        reference = (2 * rng.integers(0, 2, 256) - 1).astype(complex)
        channel = np.array([1.0, 0.5])
        received = _isi_channel(reference, channel)
        # without equalization many decisions are near the boundary
        raw_margin = np.min(np.abs(received.real))
        eq = LmsEqualizer(num_taps=9, step_size=0.05)
        eq.train(received, reference, passes=8)
        out = eq.apply(received)
        decisions = np.sign(out.real)
        errors = np.count_nonzero(decisions[4:-4] != reference[4:-4].real)
        assert errors == 0
        assert np.min(np.abs(out.real[4:-4])) > raw_margin

    def test_training_shorter_than_taps_rejected(self):
        eq = LmsEqualizer(num_taps=9)
        with pytest.raises(ValueError):
            eq.train(np.ones(4, dtype=complex), np.ones(4, dtype=complex))

    def test_shape_mismatch_rejected(self):
        eq = LmsEqualizer()
        with pytest.raises(ValueError):
            eq.train(np.ones(8, dtype=complex), np.ones(9, dtype=complex))


class TestReceiverIntegration:
    def test_equalizer_rescues_heavy_multipath(self):
        """The E-ablation behaviour: LMS on vs off under strong ISI."""
        from dataclasses import replace

        from repro.channel.environment import Environment
        from repro.core.ap import APConfig
        from repro.core.link import LinkConfig, simulate_link

        # heavy NLOS: echoes with delays around one symbol period
        symbol_period = 1 / 10e6
        base = LinkConfig(distance_m=3.0, environment=Environment.anechoic())

        def run(equalizer_taps: int, seed: int) -> float:
            cfg = replace(
                base,
                ap=APConfig(equalizer_taps=equalizer_taps),
                rician_k_db=2.0,
                num_nlos_paths=2,
                max_excess_delay_s=1.2 * symbol_period,
            )
            total_errors = 0
            total_bits = 0
            for s in range(6):
                result = simulate_link(cfg, num_payload_bits=1024, rng=seed + s)
                total_errors += result.bit_errors
                total_bits += result.num_payload_bits
            return total_errors / total_bits

        ber_one_tap = run(0, seed=11)
        ber_lms = run(9, seed=11)
        assert ber_lms <= ber_one_tap
