"""Tests for repro.channel.environment."""

import numpy as np
import pytest

from repro.channel.environment import ClutterReflector, Environment


class TestClutterReflector:
    def test_rejects_non_positive_distance(self):
        with pytest.raises(ValueError):
            ClutterReflector(distance_m=0.0, rcs_dbsm=0.0)

    def test_rejects_negative_drift(self):
        with pytest.raises(ValueError):
            ClutterReflector(distance_m=1.0, rcs_dbsm=0.0, drift_rate_hz=-1.0)


class TestEnvironment:
    def test_rejects_negative_isolation(self):
        with pytest.raises(ValueError):
            Environment(tx_rx_isolation_db=-5.0)

    def test_anechoic_has_no_reflectors(self):
        env = Environment.anechoic()
        assert env.reflectors == ()
        assert env.tx_rx_isolation_db >= 60.0

    def test_office_has_drifting_reflector(self):
        env = Environment.typical_office()
        assert any(r.drift_rate_hz > 0 for r in env.reflectors)

    def test_leakage_amplitude_below_tx(self):
        env = Environment(tx_rx_isolation_db=40.0)
        power = env.total_clutter_power(tx_amplitude=1.0)
        assert power == pytest.approx(1e-4, rel=0.01)  # -40 dB, no clutter

    def test_clutter_scales_inverse_fourth_power(self):
        env = Environment()
        near = ClutterReflector(distance_m=2.0, rcs_dbsm=0.0)
        far = ClutterReflector(distance_m=4.0, rcs_dbsm=0.0)
        ratio = env.reflector_amplitude(near, 1.0) / env.reflector_amplitude(far, 1.0)
        assert ratio**2 == pytest.approx(16.0, rel=1e-9)

    def test_rcs_scales_amplitude(self):
        env = Environment()
        small = ClutterReflector(distance_m=3.0, rcs_dbsm=0.0)
        big = ClutterReflector(distance_m=3.0, rcs_dbsm=10.0)
        power_ratio = (
            env.reflector_amplitude(big, 1.0) / env.reflector_amplitude(small, 1.0)
        ) ** 2
        assert power_ratio == pytest.approx(10.0, rel=1e-9)


class TestInterferenceWaveform:
    def test_length_and_rate(self, rng):
        env = Environment.typical_office()
        wave = env.interference_waveform(1000, 1e6, 0.3, rng)
        assert wave.num_samples == 1000
        assert wave.sample_rate == 1e6

    def test_static_environment_gives_constant_waveform(self, rng):
        env = Environment(tx_rx_isolation_db=30.0, reflectors=())
        wave = env.interference_waveform(500, 1e6, 1.0, rng)
        assert np.max(np.abs(wave.samples - wave.samples[0])) < 1e-12

    def test_power_matches_total_clutter_power(self, rng):
        env = Environment.typical_office()
        # static part only: remove the drifting reflector for exactness
        static = Environment(
            tx_rx_isolation_db=env.tx_rx_isolation_db,
            reflectors=tuple(r for r in env.reflectors if r.drift_rate_hz == 0),
        )
        wave = static.interference_waveform(200, 1e6, 0.5, rng)
        # random phases: instantaneous power varies run to run, compare
        # against the sum with the same seed-independent bound
        assert wave.power() <= 4 * static.total_clutter_power(0.5)

    def test_drifting_reflector_moves_waveform(self, rng):
        env = Environment(
            tx_rx_isolation_db=200.0,
            reflectors=(
                ClutterReflector(
                    distance_m=2.0,
                    rcs_dbsm=20.0,
                    drift_rate_hz=100e3,
                    drift_amplitude_rad=1.0,
                ),
            ),
        )
        wave = env.interference_waveform(2000, 1e6, 1.0, rng)
        assert np.std(np.angle(wave.samples)) > 0.1

    def test_deterministic_given_seed(self):
        env = Environment.typical_office()
        a = env.interference_waveform(100, 1e6, 1.0, np.random.default_rng(5))
        b = env.interference_waveform(100, 1e6, 1.0, np.random.default_rng(5))
        assert np.array_equal(a.samples, b.samples)


class TestDiagnostics:
    def test_strongest_clutter_range(self):
        env = Environment(
            reflectors=(
                ClutterReflector(distance_m=2.0, rcs_dbsm=0.0),
                ClutterReflector(distance_m=5.0, rcs_dbsm=0.0),
            )
        )
        assert env.strongest_clutter_range() == 2.0

    def test_no_clutter_returns_none(self):
        assert Environment.anechoic().strongest_clutter_range() is None
