"""Emit a cache-hit/timing summary of the sweep execution engine.

Runs a small office-link distance sweep twice through
:class:`repro.sim.executor.SweepExecutor` — a cold pass that fills an
on-disk :class:`repro.sim.cache.ResultCache`, then a warm pass that
must replay it hit-for-hit — and writes the timing/caching report to a
text file.  CI uploads that file as a build artifact, so the engine's
behaviour (hit rate, per-point time, backend) is observable per-commit
without digging through logs.

    python tools/executor_summary.py --out executor-summary.txt

Exit code is non-zero if the warm pass fails to replay bit-identically,
making the summary double as a cheap end-to-end determinism probe.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path

# allow running from a source checkout without installation
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.channel.environment import Environment  # noqa: E402
from repro.core.link import LinkConfig  # noqa: E402
from repro.core.tag import TagConfig  # noqa: E402
from repro.sim.cache import ResultCache, code_version  # noqa: E402
from repro.sim.executor import BerSweepTask, SweepExecutor  # noqa: E402

_DISTANCES_M = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]
_SEED = 0


def build_task() -> BerSweepTask:
    """The probe workload: an 8-point office-link BER sweep."""
    return BerSweepTask(
        config=LinkConfig(
            tag=TagConfig(symbol_rate_hz=10e6, samples_per_symbol=4),
            environment=Environment.typical_office(),
        ),
        param="distance_m",
        target_errors=40,
        max_bits=24_000,
        bits_per_frame=3000,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--out", default="executor-summary.txt",
                        help="where to write the summary")
    parser.add_argument("--backend",
                        default=os.environ.get("REPRO_SWEEP_BACKEND", "serial"),
                        choices=list(SweepExecutor.BACKENDS))
    args = parser.parse_args(argv)

    task = build_task()
    lines = [
        "sweep execution engine summary",
        f"code version : {code_version()}",
        f"backend      : {args.backend}",
        f"cpu count    : {os.cpu_count()}",
        f"sweep        : {len(_DISTANCES_M)}-point distance sweep, seed {_SEED}",
        "",
    ]
    with tempfile.TemporaryDirectory(prefix="repro-executor-summary-") as cache_dir:
        cache = ResultCache(cache_dir)

        start = time.perf_counter()
        cold = SweepExecutor(args.backend, cache=cache).run(
            _DISTANCES_M, task, seed=_SEED
        )
        cold_s = time.perf_counter() - start
        lines += ["[cold pass]", cold.summary(), ""]

        start = time.perf_counter()
        warm = SweepExecutor(args.backend, cache=cache).run(
            _DISTANCES_M, task, seed=_SEED
        )
        warm_s = time.perf_counter() - start
        lines += ["[warm pass]", warm.summary(), "", cache.stats.summary()]

        identical = pickle.dumps(warm.points) == pickle.dumps(cold.points)
        replayed = warm.cache_hits == len(_DISTANCES_M)
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        lines += [
            f"warm replay  : {'bit-identical' if identical else 'MISMATCH'}, "
            f"{warm.cache_hits}/{len(_DISTANCES_M)} hits, {speedup:.0f}x faster",
        ]

    text = "\n".join(lines) + "\n"
    Path(args.out).write_text(text)
    print(text)
    if not (identical and replayed):
        print("ERROR: warm pass did not replay bit-identically", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
