#!/usr/bin/env python
"""Profile the vectorized hot paths and emit the perf-trajectory file.

Runs the reference-vs-vectorized microbenchmarks from
:mod:`repro.sim.profiling` (Viterbi, frame-chain TX, end-to-end batched
link, Van Atta pattern), prints the speedup table, and writes
``BENCH_hotpaths.json`` at the repo root — the perf-trajectory baseline
CI uploads as an artifact so future performance PRs have numbers to
compare against.

Usage::

    PYTHONPATH=src python tools/profile_hotpaths.py            # full sizes
    PYTHONPATH=src python tools/profile_hotpaths.py --quick    # CI sizes
    PYTHONPATH=src python tools/profile_hotpaths.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.profiling import run_hotpath_benchmarks, write_trajectory  # noqa: E402
from repro.sim.results import ResultTable  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized workloads (faster, noisier speedup ratios)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_hotpaths.json"),
        help="trajectory JSON path (default: BENCH_hotpaths.json at repo root)",
    )
    args = parser.parse_args(argv)

    report = run_hotpath_benchmarks(quick=args.quick)
    table = ResultTable(
        "hot-path microbenchmarks" + (" [--quick]" if args.quick else ""),
        ["kernel", "reference_ms", "vectorized_ms", "speedup"],
    )
    for bench in report.benchmarks:
        table.add_row(
            bench.name,
            round(bench.reference_s * 1e3, 3),
            round(bench.vectorized_s * 1e3, 3),
            f"{bench.speedup:.1f}x",
        )
    print(table.to_text())

    path = write_trajectory(report, args.out)
    print(f"\nperf trajectory written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
